"""Multi-index ``Collection``: several physical structures, one record set.

The paper gives one provably-good structure per query shape; a real
workload composes shapes.  A :class:`Collection` owns *several* physical
indexes over one logical set of records — the canonical interval
collection (:meth:`Collection.for_intervals`) keeps

* an :class:`~repro.core.ExternalIntervalManager` (stabbing /
  intersection, Theorem 3.2/3.7),
* a B+-tree over **low** endpoints, and
* a B+-tree over **high** endpoints,

all on the same storage backend, kept in sync by the lifecycle-complete
write path — :meth:`Collection.insert`, :meth:`Collection.delete`,
:meth:`Collection.update`, :meth:`Collection.bulk_load`, and the deferred,
grouped :class:`WriteBatch` (``with coll.batch(): ...``).  Queries
go through a :class:`~repro.engine.planner.QueryPlanner` that picks the
cheapest physical index per shape: ``Stab``/``Range`` run on the interval
manager, ``EndpointRange`` on the matching endpoint tree, conjunctions
push the cheapest conjunct down and post-filter the rest, disjunctions
union deduplicated subplans, and anything else (e.g. a bare ``Not``)
falls back to a full scan of the low-endpoint tree filtered through the
query's ``matches`` oracle.

A ``Collection`` itself satisfies the
:class:`~repro.engine.protocols.Index` protocol, so it registers in the
:class:`~repro.engine.Engine` namespace like any other index
(``engine.create_collection(...)``) and answers ``engine.query`` /
``engine.explain`` calls.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.complexity import log_b
from repro.engine.planner import Accessor, Plan, QueryPlanner
from repro.engine.protocols import Bound
from repro.engine.queries import EndpointRange, Range, Stab
from repro.engine.result import QueryResult
from repro.records import fresh_record_keys, record_key


class WriteBatch:
    """A size-bounded buffer of deferred writes over one :class:`Collection`.

    While a batch is active (``with coll.batch() as b``), ``insert`` /
    ``delete`` / ``update`` calls on the collection enqueue instead of
    touching the physical indexes.  :meth:`flush` — called automatically
    when ``max_size`` operations are buffered and once more on ``with``
    exit — applies the queue *in order*, grouping maximal runs of inserts
    into one ``bulk_load`` per run so every member index absorbs them in a
    single reorganisation instead of one tree-descent per record.

    Validation happens at enqueue time against the staged state (live uids
    plus the queued operations), so a duplicate insert or an unknown delete
    fails fast, before anything is applied.
    """

    def __init__(self, collection: "Collection", max_size: int = 1024) -> None:
        if max_size < 1:
            raise ValueError(f"batch max_size must be positive, not {max_size}")
        self.collection = collection
        self.max_size = max_size
        self._ops: List[Tuple[str, Any]] = []
        #: uids as they will stand after the queue is applied
        self._staged_uids = set(collection._uids)

    # -- enqueue ---------------------------------------------------------- #
    def insert(self, record: Any) -> None:
        key = record_key(record)
        if key in self._staged_uids:
            raise ValueError(
                f"record uid {key!r} is already indexed (or staged); "
                "inserting the same object twice would silently double-index it"
            )
        self._staged_uids.add(key)
        self._ops.append(("insert", record))
        self._maybe_flush()

    def delete(self, record: Any) -> bool:
        key = record_key(record)
        if key not in self._staged_uids:
            return False
        self._staged_uids.discard(key)
        self._ops.append(("delete", record))
        self._maybe_flush()
        return True

    def _maybe_flush(self) -> None:
        if len(self._ops) >= self.max_size:
            self.flush()

    # -- apply ------------------------------------------------------------ #
    def flush(self) -> None:
        """Apply every queued operation in order (inserts grouped per run).

        A single-record insert run falls back to the bulk path when the
        collection only accepts reconstruction (static structures), so
        batched writes behave the same regardless of run length.  If an
        apply fails anyway, the unapplied tail is re-queued rather than
        silently dropped.
        """
        ops, self._ops = self._ops, []
        applied = 0
        try:
            i, n = 0, len(ops)
            while i < n:
                op, record = ops[i]
                if op == "insert":
                    run = [record]
                    while i + len(run) < n and ops[i + len(run)][0] == "insert":
                        run.append(ops[i + len(run)][1])
                    if len(run) == 1:
                        try:
                            self.collection._apply_insert(record)
                        except NotImplementedError:
                            self.collection._apply_bulk(run)
                    else:
                        self.collection._apply_bulk(run)
                    i += len(run)
                else:
                    self.collection._apply_delete(record)
                    i += 1
                applied = i
        except BaseException:
            self._ops = ops[applied:] + self._ops
            raise

    def __len__(self) -> int:
        return len(self._ops)

    def __enter__(self) -> "WriteBatch":
        return self

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        self.collection._batch = None
        if exc_type is None:
            self.flush()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WriteBatch(pending={len(self._ops)}, max_size={self.max_size})"


class Collection:
    """Several physical indexes over one logical record set.

    Build one with :meth:`for_intervals` (the canonical configuration) or
    assemble a custom one by calling :meth:`attach` per physical index.
    The collection keeps the logical records in memory as the brute-force
    :meth:`oracle` substrate — the planner's answers are always checkable
    against ``[r for r in records if q.matches(r)]``.
    """

    #: capability flags of the :class:`~repro.engine.protocols.MutableIndex`
    #: tier (per-accessor write hooks do the actual work)
    supports_deletes = True
    supports_bulk_load = True

    def __init__(self, disk: Any, *, name: str = "collection") -> None:
        self.disk = disk
        self.name = name
        #: live records keyed by record_key (insertion-ordered); dict-keyed
        #: so a delete is O(1) bookkeeping next to its O(log_B n) I/Os
        self._records: Dict[Any, Any] = {}
        self._accessors: List[Accessor] = []
        self._planner = QueryPlanner(self._accessors, disk=disk)
        self._batch: Optional[WriteBatch] = None
        #: the engine's :class:`~repro.durability.mvcc.EpochManager`; when
        #: attached, committed writes tag record versions for snapshot
        #: readers.  ``None`` for standalone collections (legacy behavior:
        #: no tags, physical deletes are immediate).
        self.epochs: Optional[Any] = None
        #: uid -> created_epoch, for records newer than the GC horizon —
        #: a pinned reader older than the epoch must not see them
        self._fresh: Dict[Any, int] = {}
        #: uid -> (record, deleted_epoch): logically deleted, physically
        #: still indexed until no pinned reader can see the version
        self._tombstones: Dict[Any, Tuple[Any, int]] = {}

    @property
    def _uids(self):
        """The live record identity keys (a view over the record store)."""
        return self._records.keys()

    # ------------------------------------------------------------------ #
    # assembly
    # ------------------------------------------------------------------ #
    def attach(
        self,
        name: str,
        index: Any,
        *,
        translate: Callable[[Any], Optional[Any]],
        run: Callable[[Any], Iterable[Any]],
        insert: Optional[Callable[[Any], None]] = None,
        delete: Optional[Callable[[Any], Any]] = None,
        bulk: Optional[Callable[[List[Any]], Any]] = None,
        scan: Optional[Callable[[], Iterable[Any]]] = None,
        scan_bound: Optional[Callable[[], Bound]] = None,
    ) -> Any:
        """Attach one physical index.

        ``translate`` maps a logical query node to this index's query (or
        ``None``); ``run`` streams logical records for a translated query;
        ``insert``/``delete``/``bulk`` (when given) keep the index in sync
        with the collection's write path — ``bulk`` absorbs a whole batch
        in one reorganisation, falling back to per-record ``insert`` when
        unset; ``scan``/``scan_bound`` advertise the full-scan fallback.
        Earlier-attached indexes win cost ties (among plans of equal
        generation — the planner's cache keeps a tie resolved until the
        next invalidation).

        Attaching changes the planner's candidate set, so the plan cache
        is invalidated: prepared queries re-plan on their next run.
        """
        self._planner.invalidate()
        self._accessors.append(
            Accessor(
                name=name,
                index=index,
                translate=translate,
                run=run,
                scan=scan,
                scan_bound=scan_bound,
                rewrite=getattr(index, "bind", None),
                insert=insert,
                delete=delete,
                bulk=bulk,
            )
        )
        return index

    def detach(self, name: str) -> Any:
        """Detach one physical index by name (the inverse of :meth:`attach`).

        The index leaves the planner's candidate set and the write fan-out
        — it stops being maintained, so re-attaching it later is only sound
        if no writes happened in between (or after a fresh bulk build).
        Returns the detached index; its blocks are *not* freed.  The plan
        cache is invalidated, so cached strategies referencing it re-plan.
        """
        for i, acc in enumerate(self._accessors):
            if acc.name == name:
                self._planner.invalidate()
                del self._accessors[i]
                return acc.index
        raise KeyError(
            f"no physical index named {name!r}; have {self.physical}"
        )

    @property
    def planner(self) -> QueryPlanner:
        """The collection's (long-lived, plan-caching) query planner."""
        return self._planner

    @classmethod
    def for_intervals(
        cls,
        disk: Any,
        intervals: Iterable[Any] = (),
        *,
        name: str = "intervals",
        dynamic: bool = True,
    ) -> "Collection":
        """The canonical interval collection (manager + endpoint B+-trees)."""
        from repro.btree import BPlusTree
        from repro.core.interval_manager import ExternalIntervalManager

        items = list(intervals)
        coll = cls(disk, name=name)
        fresh_record_keys(items, context="the initial intervals")
        coll._records = {record_key(iv): iv for iv in items}

        manager = ExternalIntervalManager(disk, items, dynamic=dynamic)
        coll.attach(
            "interval-manager",
            manager,
            translate=lambda q: q if isinstance(q, (Stab, Range)) else None,
            run=lambda pq: manager.query(pq),
            # attached first: on static collections manager.insert raises
            # before any other physical index has been touched
            insert=manager.insert,
            delete=manager.delete,
            bulk=manager.bulk_load,
        )

        def endpoint_tree(side: str) -> BPlusTree:
            tree = BPlusTree.bulk_load(
                disk,
                ((getattr(iv, side), iv) for iv in items),
                name=f"{side}-endpoints",
            )

            def translate(q: Any) -> Optional[Any]:
                if isinstance(q, EndpointRange) and q.side == side:
                    return Range(
                        q.low,
                        q.high,
                        min_inclusive=q.min_inclusive,
                        max_inclusive=q.max_inclusive,
                    )
                return None

            coll.attach(
                f"{side}-endpoints",
                tree,
                translate=translate,
                run=lambda pq: (iv for _, iv in tree.query(pq)),
                insert=lambda iv: tree.insert(getattr(iv, side), iv),
                delete=lambda iv: tree.delete(
                    getattr(iv, side), match=lambda v: v.uid == iv.uid
                ),
                bulk=lambda ivs: tree.bulk_load((getattr(iv, side), iv) for iv in ivs),
                # only one scan provider is needed; the low tree volunteers
                scan=(lambda: (iv for _, iv in tree.iter_pairs())) if side == "low" else None,
                # priced arithmetically (leaves are at least half full, so a
                # full scan reads <= 2n/B leaf blocks plus the root path) —
                # walking the tree to count blocks here would itself cost
                # O(n/B) per plan() call
                scan_bound=(
                    (
                        lambda: Bound.of(
                            "log_B n + 2n/B (full scan)",
                            lambda t, tree=tree: log_b(max(tree.size, 2), tree.branching)
                            + 2.0 * max(tree.size, 1) / tree.branching,
                        )
                    )
                    if side == "low"
                    else None
                ),
            )
            return tree

        endpoint_tree("low")
        endpoint_tree("high")
        return coll

    # ------------------------------------------------------------------ #
    # the write surface (MutableIndex tier)
    # ------------------------------------------------------------------ #
    def insert(self, record: Any) -> None:
        """Insert one logical record into every physical index.

        Duplicate record uids raise a descriptive :class:`ValueError`
        instead of silently double-indexing.  Inside an active
        :meth:`batch`, the write is deferred to the batch buffer.
        """
        if self._batch is not None:
            self._batch.insert(record)
            return
        self._apply_insert(record)

    def delete(self, record: Any) -> bool:
        """Delete one logical record (matched by uid) from every physical
        index; ``True`` when it was present.  Deferred inside :meth:`batch`."""
        if self._batch is not None:
            return self._batch.delete(record)
        return self._apply_delete(record)

    def update(self, old: Any, new: Any) -> None:
        """Replace ``old`` with ``new`` (a delete + insert, batch-aware).

        Raises :class:`KeyError` when ``old`` is not in the collection (so
        a lost update never turns into a silent insert) and
        :class:`ValueError` — *before* anything is deleted — when ``new``
        would collide with a third record.  If the insert side still fails
        (e.g. a static collection that only accepts bulk reconstruction),
        ``old`` is restored through the bulk path, so a failed update
        never loses the record.
        """
        staged = self._batch._staged_uids if self._batch is not None else self._uids
        old_key, new_key = record_key(old), record_key(new)
        if old_key not in staged:
            raise KeyError(f"cannot update: no record with uid {old_key!r}")
        if new_key != old_key and new_key in staged:
            raise ValueError(
                f"cannot update: record uid {new_key!r} is already indexed"
            )
        if self._batch is not None:
            self._batch.delete(old)
            self._batch.insert(new)
            return
        self._apply_delete(old)
        try:
            self._apply_insert(new)
        except BaseException:
            self._apply_bulk([old])
            raise

    def bulk_load(self, records: Iterable[Any]) -> int:
        """Absorb a batch of records in one reorganisation per member index.

        Physical indexes that registered a ``bulk`` hook get the whole
        batch at once (bottom-up B+-tree builds, global metablock
        rebuilds); the rest fall back to per-record inserts.  Duplicate
        uids — within the batch or against the live set — raise before any
        index is touched.
        """
        batch = list(records)
        if not batch:
            return 0
        if self._batch is not None:
            # stay batch-aware: validate the WHOLE batch against the staged
            # state first (so a duplicate raises before anything is queued),
            # then enqueue so flush applies everything in enqueue order
            fresh_record_keys(batch, self._batch._staged_uids)
            for record in batch:
                self._batch.insert(record)
            return len(batch)
        fresh_record_keys(batch, self._uids)
        self._apply_bulk(batch)
        return len(batch)

    def batch(self, max_size: int = 1024) -> WriteBatch:
        """Open a :class:`WriteBatch`: ``with coll.batch() as b: ...``.

        Writes issued through the collection while the batch is active are
        buffered (up to ``max_size`` operations, then auto-flushed) and
        applied grouped on exit — runs of inserts become one
        :meth:`bulk_load` across all member indexes.
        """
        if self._batch is not None:
            raise RuntimeError("a WriteBatch is already active on this collection")
        self._batch = WriteBatch(self, max_size=max_size)
        return self._batch

    # -- the unbuffered appliers (WriteBatch.flush calls these) ---------- #
    def _write_epoch(self) -> Optional[int]:
        """The epoch of the engine commit applying on this thread, if any."""
        return self.epochs.write_epoch() if self.epochs is not None else None

    def _apply_insert(self, record: Any) -> None:
        key = record_key(record)
        if key in self._uids:
            raise ValueError(
                f"record uid {key!r} is already indexed; inserting the same "
                "object twice would silently double-index it"
            )
        # a logically deleted uid may be physically indexed still (its
        # tombstone waits for pinned readers): evict it now, or the
        # physical indexes would hold the uid twice
        self._evict_tombstone(key)
        # the manager raises on static collections *before* any state changes
        for acc in self._accessors:
            if acc.insert is not None:
                acc.insert(record)
        self._records[key] = record
        epoch = self._write_epoch()
        if epoch is not None:
            self._fresh[key] = epoch

    def _apply_delete(self, record: Any) -> bool:
        key = record_key(record)
        if key not in self._uids:
            return False
        epoch = self._write_epoch()
        if epoch is None:
            # standalone (no epoch clock): physical delete, immediately
            for acc in self._accessors:
                if acc.delete is not None:
                    acc.delete(record)
        else:
            # committed turn: keep the physical entries for pinned
            # readers; the engine purges them once the GC horizon passes
            # (immediately after publish when nobody is pinned)
            self._tombstones[key] = (self._records[key], epoch)
        del self._records[key]
        return True

    def _apply_bulk(self, batch: List[Any]) -> None:
        # one reorganisation per member index changes costs wholesale —
        # drop cached plan strategies so the next query re-costs candidates
        self._planner.invalidate()
        for record in batch:
            self._evict_tombstone(record_key(record))
        for acc in self._accessors:
            if acc.bulk is not None:
                acc.bulk(batch)
            elif acc.insert is not None:
                for record in batch:
                    acc.insert(record)
        epoch = self._write_epoch()
        for record in batch:
            self._records[record_key(record)] = record
            if epoch is not None:
                self._fresh[record_key(record)] = epoch

    # ------------------------------------------------------------------ #
    # MVCC version state (tagged by the appliers, filtered by sessions)
    # ------------------------------------------------------------------ #
    @property
    def has_mvcc_state(self) -> bool:
        """Whether any version tags exist (fast gate for the read filter)."""
        return bool(self._fresh or self._tombstones)

    def visible_at(self, key: Any, epoch: int) -> bool:
        """Whether the record with identity ``key`` is visible at ``epoch``.

        Untagged records are visible at every epoch (they predate the
        oldest pin, or the collection never saw a committed turn); a
        fresh tag hides the record from older epochs, a tombstone from
        ``deleted_epoch`` onward.
        """
        entry = self._tombstones.get(key)
        if entry is not None and entry[1] <= epoch:
            return False
        created = self._fresh.get(key)
        return created is None or created <= epoch

    def _evict_tombstone(self, key: Any) -> None:
        entry = self._tombstones.pop(key, None)
        if entry is not None:
            record, _ = entry
            for acc in self._accessors:
                if acc.delete is not None:
                    acc.delete(record)
            self._fresh.pop(key, None)

    def purge_versions(self, safe_epoch: int) -> int:
        """Reclaim version state no pinned reader can see (engine GC hook).

        Tombstones with ``deleted_epoch <= safe_epoch`` are physically
        deleted from every member index; fresh tags with
        ``created_epoch <= safe_epoch`` become implicit (every current and
        future pin sees them).  Returns the number of physical purges.
        Caller holds the collection's write latch.
        """
        for key in [k for k, c in self._fresh.items() if c <= safe_epoch]:
            del self._fresh[key]
        doomed = [
            (key, record)
            for key, (record, deleted) in self._tombstones.items()
            if deleted <= safe_epoch
        ]
        for key, record in doomed:
            for acc in self._accessors:
                if acc.delete is not None:
                    acc.delete(record)
            del self._tombstones[key]
        return len(doomed)

    # ------------------------------------------------------------------ #
    # the uniform Index surface
    # ------------------------------------------------------------------ #

    def query(self, q: Any) -> QueryResult:
        """Plan ``q``, execute the cheapest plan, return the lazy result.

        The executed plan rides along as ``result.plan`` and is identical
        to what :meth:`plan` / ``Engine.explain`` report for the same query.
        """
        return self._planner.query(q)

    def plan(self, q: Any) -> Plan:
        """The plan :meth:`query` would execute (pure; no I/O)."""
        return self._planner.plan(q)

    explain = plan

    def supports(self, q: Any) -> bool:
        """Whether some plan serves ``q`` (the scan fallback makes this broad)."""
        try:
            self._planner.plan(q)
        except TypeError:
            return False
        return True

    def cost(self, q: Any) -> Bound:
        """The predicted bound of the plan :meth:`query` would choose."""
        return self._planner.plan(q).bound

    def oracle(self, q: Any) -> List[Any]:
        """Brute-force answer over the in-memory records (the test oracle).

        ``Limit`` is honoured as a cap, ``OrderBy`` as a sort, mirroring
        the planner's modifier semantics.
        """
        from repro.engine.queries import Limit, OrderBy

        base, modifiers = QueryPlanner._peel(q)
        out = [r for r in self._records.values() if base.matches(r)]
        for m in modifiers:
            if isinstance(m, OrderBy):
                out.sort(key=m.key_fn(), reverse=m.reverse)
            elif isinstance(m, Limit):
                out = out[: m.n]
        return out

    def block_count(self) -> int:
        """Blocks used by all physical indexes together."""
        return sum(acc.index.block_count() for acc in self._accessors)

    @property
    def live_count(self) -> int:
        """Number of live (non-deleted) records — what the cost bounds use.

        Each member structure maintains its own live size (B+-trees shrink
        on delete, the interval manager's ``len`` excludes tombstones), so
        the planner's ``cost()`` comparisons stay correct under deletion.
        """
        return len(self._records)

    def destroy(self) -> None:
        """Free every block of every physical index (``Engine.drop_index``)."""
        self._planner.invalidate()
        for acc in self._accessors:
            destroy = getattr(acc.index, "destroy", None)
            if callable(destroy):
                destroy()
        self._records = {}
        self._fresh = {}
        self._tombstones = {}

    def io_stats(self):
        """Live I/O counters of the shared backing store."""
        return self.disk.stats

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def physical(self) -> List[str]:
        """Names of the attached physical indexes, in attachment order."""
        return [acc.name for acc in self._accessors]

    def records(self) -> List[Any]:
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Any]:
        return iter(list(self._records.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Collection({self.name!r}, n={len(self)}, "
            f"physical={self.physical})"
        )
