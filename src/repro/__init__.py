"""repro — I/O-efficient indexing for data models with constraints and classes.

A from-scratch reproduction of

    P. Kanellakis, S. Ramaswamy, D. E. Vengroff, J. S. Vitter.
    "Indexing for Data Models with Constraints and Classes",
    PODS 1993 / JCSS 52(3):589-612, 1996.

The package implements the paper's data structures (the metablock tree and
its semi-dynamic and 3-sided variants, blocked priority search trees, the
class-indexing schemes of Theorems 2.6 and 4.7), the substrates they rely on
(a simulated disk with exact I/O accounting, external B+-trees, the in-core
baselines of Section 1.4) and the constraint data model of Section 2.1, plus
workload generators and benchmark harnesses that regenerate an empirical
evaluation of every bound the paper proves.

Quickstart
----------
>>> from repro import SimulatedDisk, ExternalIntervalManager, Interval
>>> disk = SimulatedDisk(block_size=16)
>>> manager = ExternalIntervalManager(disk, [Interval(1, 5), Interval(3, 9)])
>>> sorted((iv.low, iv.high) for iv in manager.stabbing_query(4))
[(1, 5), (3, 9)]
"""

from repro.interval import Interval
from repro.io import BufferManager, IOStats, SimulatedDisk
from repro.btree import BPlusTree
from repro.core import ClassIndexer, ExternalIntervalManager
from repro.classes import ClassHierarchy, ClassObject, CombinedClassIndex, SimpleClassIndex
from repro.constraints import (
    Constraint,
    GeneralizedOneDimensionalIndex,
    GeneralizedRelation,
    GeneralizedTuple,
    var,
)
from repro.metablock import (
    AugmentedMetablockTree,
    DiagonalCornerQuery,
    PlanarPoint,
    StaticMetablockTree,
    ThreeSidedMetablockTree,
    ThreeSidedQuery,
)
from repro.pst import ExternalPST

__version__ = "1.0.0"

__all__ = [
    "AugmentedMetablockTree",
    "BPlusTree",
    "BufferManager",
    "ClassHierarchy",
    "ClassIndexer",
    "ClassObject",
    "CombinedClassIndex",
    "Constraint",
    "DiagonalCornerQuery",
    "ExternalIntervalManager",
    "ExternalPST",
    "GeneralizedOneDimensionalIndex",
    "GeneralizedRelation",
    "GeneralizedTuple",
    "IOStats",
    "Interval",
    "PlanarPoint",
    "SimpleClassIndex",
    "SimulatedDisk",
    "StaticMetablockTree",
    "ThreeSidedMetablockTree",
    "ThreeSidedQuery",
    "var",
    "__version__",
]
