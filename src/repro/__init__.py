"""repro — I/O-efficient indexing for data models with constraints and classes.

A from-scratch reproduction of

    P. Kanellakis, S. Ramaswamy, D. E. Vengroff, J. S. Vitter.
    "Indexing for Data Models with Constraints and Classes",
    PODS 1993 / JCSS 52(3):589-612, 1996.

The package implements the paper's data structures (the metablock tree and
its semi-dynamic and 3-sided variants, blocked priority search trees, the
class-indexing schemes of Theorems 2.6 and 4.7), the substrates they rely on
(pluggable storage backends with exact I/O accounting, external B+-trees,
the in-core baselines of Section 1.4) and the constraint data model of
Section 2.1, plus workload generators and benchmark harnesses that
regenerate an empirical evaluation of every bound the paper proves.

The public entry point is the :class:`Engine`: it owns a storage backend
(the in-memory :class:`SimulatedDisk` or the file-backed :class:`FileDisk`)
and a namespace of indexes sharing the uniform :class:`~repro.engine.Index`
surface.  Queries return lazy :class:`QueryResult` streams that carry their
own I/O counts next to the paper's predicted bound.

Quickstart
----------
>>> from repro import Engine, Interval, Stab
>>> engine = Engine(block_size=16)
>>> _ = engine.create_interval_index("temporal", [Interval(1, 5), Interval(3, 9)])
>>> result = engine.query("temporal", Stab(4))   # lazy: no I/O yet
>>> sorted((iv.low, iv.high) for iv in result)   # streams block by block
[(1, 5), (3, 9)]
>>> result.ios > 0 and result.bound is not None  # measured vs. Theorem 3.2
True

The pre-engine constructors (``ExternalIntervalManager(disk, ...)``,
``ClassIndexer(disk, ...)``, ...) remain importable and unchanged.
"""

from repro.interval import Interval
from repro.io import (
    BufferManager,
    FileDisk,
    IOStats,
    SimulatedDisk,
    StorageBackend,
)
from repro.btree import BPlusTree
from repro.core import ClassIndexer, ExternalIntervalManager
from repro.classes import ClassHierarchy, ClassObject, CombinedClassIndex, SimpleClassIndex
from repro.constraints import (
    Constraint,
    GeneralizedOneDimensionalIndex,
    GeneralizedRelation,
    GeneralizedTuple,
    var,
)
from repro.engine import (
    And,
    Bound,
    ClassRange,
    Collection,
    EndpointRange,
    Engine,
    EngineSession,
    Index,
    Limit,
    Not,
    Or,
    OrderBy,
    Param,
    Plan,
    PreparedQuery,
    QueryPlanner,
    QueryResult,
    Range,
    ResultConsumedError,
    RWLock,
    SessionResult,
    Stab,
    WriteIntentError,
    bind_params,
    query_from_dict,
    unbound_params,
)
from repro.metablock import (
    AugmentedMetablockTree,
    DiagonalCornerQuery,
    PlanarPoint,
    StaticMetablockTree,
    ThreeSidedMetablockTree,
    ThreeSidedQuery,
)
from repro.pst import ExternalPST

__version__ = "1.2.0"

__all__ = [
    "And",
    "AugmentedMetablockTree",
    "BPlusTree",
    "Bound",
    "BufferManager",
    "ClassHierarchy",
    "ClassIndexer",
    "ClassObject",
    "ClassRange",
    "Collection",
    "CombinedClassIndex",
    "Constraint",
    "DiagonalCornerQuery",
    "EndpointRange",
    "Engine",
    "EngineSession",
    "ExternalIntervalManager",
    "ExternalPST",
    "FileDisk",
    "GeneralizedOneDimensionalIndex",
    "GeneralizedRelation",
    "GeneralizedTuple",
    "IOStats",
    "Index",
    "Interval",
    "Limit",
    "Not",
    "Or",
    "OrderBy",
    "Plan",
    "Param",
    "PlanarPoint",
    "PreparedQuery",
    "QueryPlanner",
    "QueryResult",
    "RWLock",
    "Range",
    "ResultConsumedError",
    "SessionResult",
    "SimpleClassIndex",
    "SimulatedDisk",
    "Stab",
    "StaticMetablockTree",
    "StorageBackend",
    "ThreeSidedMetablockTree",
    "ThreeSidedQuery",
    "WriteIntentError",
    "bind_params",
    "query_from_dict",
    "unbound_params",
    "var",
    "__version__",
]
