"""A single entry point over the class-indexing schemes.

The paper develops several ways to index the full extents of a class
hierarchy; :class:`ClassIndexer` exposes them behind one constructor so the
examples and benchmarks can switch scheme by name:

========================  =====================================================
``method``                structure
========================  =====================================================
``"simple"``              Theorem 2.6 range tree of B+-trees (the default)
``"combined"``            Theorem 4.7 rake-and-contract + 3-sided structures
``"single"``              one B+-tree over all objects, filtered at query time
``"full-extent"``         one B+-tree per class full extent
``"extent"``              one B+-tree per class extent
========================  =====================================================
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List

from repro.analysis.complexity import (
    btree_query_bound,
    combined_class_query_bound,
    simple_class_query_bound,
)
from repro.classes.baselines import (
    ExtentPerClassIndex,
    FullExtentPerClassIndex,
    SingleCollectionIndex,
)
from repro.classes.combined_index import CombinedClassIndex
from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.classes.simple_index import SimpleClassIndex

_METHODS = {
    "simple": SimpleClassIndex,
    "combined": CombinedClassIndex,
    "single": SingleCollectionIndex,
    "full-extent": FullExtentPerClassIndex,
    "extent": ExtentPerClassIndex,
}


class ClassIndexer:
    """Facade over the class-indexing schemes of Sections 2.2 and 4."""

    def __init__(
        self,
        disk,
        hierarchy: ClassHierarchy,
        objects: Iterable[ClassObject] = (),
        method: str = "simple",
    ) -> None:
        if method not in _METHODS:
            raise ValueError(f"unknown method {method!r}; choose one of {sorted(_METHODS)}")
        self.disk = disk
        self.method = method
        self.hierarchy = hierarchy
        self._index = _METHODS[method](disk, hierarchy, objects)

    @staticmethod
    def methods() -> List[str]:
        """The available scheme names."""
        return sorted(_METHODS)

    def insert(self, obj: ClassObject) -> None:
        """Insert an object into its class."""
        self._index.insert(obj)

    def query(self, query_or_class: Any, low: Any = None, high: Any = None) -> Any:
        """Attribute range query over the full extent of a class.

        Two calling conventions:

        * ``query(class_name, low, high)`` — the original eager API,
          returning a ``List[ClassObject]``;
        * ``query(ClassRange(class_name, low, high))`` — the uniform
          :class:`~repro.engine.protocols.Index` API, returning a lazy
          :class:`~repro.engine.result.QueryResult`.
        """
        from repro.engine.queries import ClassRange
        from repro.engine.result import QueryResult

        if isinstance(query_or_class, ClassRange):
            q = query_or_class
            return QueryResult(
                lambda: self.iter_query(q.class_name, q.low, q.high),
                disk=self.disk,
                bound=self._bound_fn(),
                label=f"classes:{self.method}:{q.class_name}",
            )
        if not isinstance(query_or_class, str):
            # any other descriptor object (Stab, Range, ...) would otherwise
            # fall into the legacy path and die on a confusing KeyError
            raise TypeError(
                f"ClassIndexer cannot answer {type(query_or_class).__name__} "
                "queries; use ClassRange(class_name, low, high)"
            )
        return self._index.query(query_or_class, low, high)

    def iter_query(self, class_name: str, low: Any, high: Any) -> Iterator[ClassObject]:
        """Stream the answer to a full-extent attribute range query."""
        return self._index.iter_query(class_name, low, high)

    def _bound_fn(self):
        """The paper's predicted query bound for the active scheme."""
        n = max(len(self), 2)
        b = self.disk.block_size
        c = max(len(self.hierarchy), 2)
        if self.method == "simple":
            return lambda t: simple_class_query_bound(n, b, c, t)
        if self.method == "combined":
            return lambda t: combined_class_query_bound(n, b, t)
        # the baselines have no better guarantee than a B+-tree probe per
        # touched collection; report the single-probe bound as the floor
        return lambda t: btree_query_bound(n, b, t)

    def supports(self, q: Any) -> bool:
        """Full-extent attribute ranges (:class:`ClassRange`) over known classes."""
        from repro.engine.queries import ClassRange

        return isinstance(q, ClassRange) and q.class_name in self.hierarchy

    def cost(self, q: Any) -> Any:
        """The active scheme's query bound (Theorem 2.6 / 4.7 or the baseline)."""
        from repro.engine.protocols import Bound

        formula = {
            "simple": "log2 c * log_B n + t/B",
            "combined": "log_B n + log2 B + t/B",
        }.get(self.method, "log_B n + t/B")
        return Bound.of(formula, self._bound_fn())

    def bind(self, q: Any) -> Any:
        """Attach this indexer's hierarchy to ``ClassRange`` oracle nodes.

        The planner rewrites residual predicates through this hook so their
        ``matches`` oracles test full-extent membership (descendants) rather
        than exact class equality.
        """
        from dataclasses import replace

        from repro.engine.queries import And, ClassRange, Limit, Not, Or, OrderBy

        if isinstance(q, ClassRange) and q.hierarchy is None:
            return replace(q, hierarchy=self.hierarchy)
        if isinstance(q, (And, Or)):
            return type(q)(*(self.bind(p) for p in q.parts))
        if isinstance(q, Not):
            return Not(self.bind(q.part))
        if isinstance(q, Limit):
            return Limit(self.bind(q.part), q.n)
        if isinstance(q, OrderBy):
            return OrderBy(self.bind(q.part), q.key, reverse=q.reverse)
        return q

    def io_stats(self):
        """Live I/O counters of the backing store."""
        return self.disk.stats

    def block_count(self) -> int:
        """Disk blocks used by the underlying structures."""
        return self._index.block_count()

    @property
    def backend(self):
        """The underlying index object (for scheme-specific introspection)."""
        return self._index

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClassIndexer(method={self.method!r}, classes={len(self.hierarchy)}, n={len(self)})"
