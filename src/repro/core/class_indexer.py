"""A single entry point over the class-indexing schemes.

The paper develops several ways to index the full extents of a class
hierarchy; :class:`ClassIndexer` exposes them behind one constructor so the
examples and benchmarks can switch scheme by name:

========================  =====================================================
``method``                structure
========================  =====================================================
``"simple"``              Theorem 2.6 range tree of B+-trees (the default)
``"combined"``            Theorem 4.7 rake-and-contract + 3-sided structures
``"single"``              one B+-tree over all objects, filtered at query time
``"full-extent"``         one B+-tree per class full extent
``"extent"``              one B+-tree per class extent
========================  =====================================================
"""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.classes.baselines import (
    ExtentPerClassIndex,
    FullExtentPerClassIndex,
    SingleCollectionIndex,
)
from repro.classes.combined_index import CombinedClassIndex
from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.classes.simple_index import SimpleClassIndex

_METHODS = {
    "simple": SimpleClassIndex,
    "combined": CombinedClassIndex,
    "single": SingleCollectionIndex,
    "full-extent": FullExtentPerClassIndex,
    "extent": ExtentPerClassIndex,
}


class ClassIndexer:
    """Facade over the class-indexing schemes of Sections 2.2 and 4."""

    def __init__(
        self,
        disk,
        hierarchy: ClassHierarchy,
        objects: Iterable[ClassObject] = (),
        method: str = "simple",
    ) -> None:
        if method not in _METHODS:
            raise ValueError(f"unknown method {method!r}; choose one of {sorted(_METHODS)}")
        self.method = method
        self.hierarchy = hierarchy
        self._index = _METHODS[method](disk, hierarchy, objects)

    @staticmethod
    def methods() -> List[str]:
        """The available scheme names."""
        return sorted(_METHODS)

    def insert(self, obj: ClassObject) -> None:
        """Insert an object into its class."""
        self._index.insert(obj)

    def query(self, class_name: str, low: Any, high: Any) -> List[ClassObject]:
        """Attribute range query over the full extent of ``class_name``."""
        return self._index.query(class_name, low, high)

    def block_count(self) -> int:
        """Disk blocks used by the underlying structures."""
        return self._index.block_count()

    @property
    def backend(self):
        """The underlying index object (for scheme-specific introspection)."""
        return self._index

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClassIndexer(method={self.method!r}, classes={len(self.hierarchy)}, n={len(self)})"
