"""A single entry point over the class-indexing schemes.

The paper develops several ways to index the full extents of a class
hierarchy; :class:`ClassIndexer` exposes them behind one constructor so the
examples and benchmarks can switch scheme by name:

========================  =====================================================
``method``                structure
========================  =====================================================
``"simple"``              Theorem 2.6 range tree of B+-trees (the default)
``"combined"``            Theorem 4.7 rake-and-contract + 3-sided structures
``"single"``              one B+-tree over all objects, filtered at query time
``"full-extent"``         one B+-tree per class full extent
``"extent"``              one B+-tree per class extent
========================  =====================================================
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List

from repro.analysis.complexity import (
    btree_query_bound,
    combined_class_query_bound,
    rebuild_due,
    simple_class_query_bound,
)
from repro.classes.baselines import (
    ExtentPerClassIndex,
    FullExtentPerClassIndex,
    SingleCollectionIndex,
)
from repro.classes.combined_index import CombinedClassIndex
from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.classes.simple_index import SimpleClassIndex
from repro.records import fresh_record_keys

_METHODS = {
    "simple": SimpleClassIndex,
    "combined": CombinedClassIndex,
    "single": SingleCollectionIndex,
    "full-extent": FullExtentPerClassIndex,
    "extent": ExtentPerClassIndex,
}


class ClassIndexer:
    """Facade over the class-indexing schemes of Sections 2.2 and 4."""

    #: capability flags of the :class:`~repro.engine.protocols.MutableIndex`
    #: tier — schemes built from B+-tree collections delete natively; the
    #: ``combined`` scheme (whose path pieces are semi-dynamic 3-sided
    #: structures) deletes through uid tombstones + global rebuilds
    supports_deletes = True
    supports_bulk_load = True

    #: rebuild the tombstoning schemes once tombstones exceed this fraction
    #: of the live objects (same global-rebuilding constant as the manager)
    REBUILD_FRACTION = 0.5

    def __init__(
        self,
        disk,
        hierarchy: ClassHierarchy,
        objects: Iterable[ClassObject] = (),
        method: str = "simple",
    ) -> None:
        if method not in _METHODS:
            raise ValueError(f"unknown method {method!r}; choose one of {sorted(_METHODS)}")
        self.disk = disk
        self.method = method
        self.hierarchy = hierarchy
        objs = list(objects)
        fresh_record_keys(objs, context="the initial objects")
        self._objects = {o.uid: o for o in objs}
        self._tombstones: set = set()
        #: bumped on every global reorganisation (threshold rebuilds, bulk
        #: loads) — the query planner folds it into its plan-cache key, so
        #: cached strategies over this indexer re-plan after a rebuild
        self.generation = 0
        self._index = _METHODS[method](disk, hierarchy, objs)

    @staticmethod
    def methods() -> List[str]:
        """The available scheme names."""
        return sorted(_METHODS)

    def insert(self, obj: ClassObject) -> None:
        """Insert an object into its class."""
        if obj.uid in self._objects:
            raise ValueError(
                f"record uid {obj.uid} is already indexed ({obj!r}); "
                "records carry a process-unique uid, so inserting the same "
                "object twice would silently double-index it"
            )
        if obj.uid in self._tombstones:
            # re-inserting a record deleted earlier, while its stale copy
            # still sits in the physical index: sweep it out first, or the
            # tombstone would hide the fresh copy (and dropping just the
            # tombstone would surface the stale duplicate)
            self._rebuild()
        self._index.insert(obj)
        self._objects[obj.uid] = obj

    def delete(self, obj: ClassObject) -> bool:
        """Delete one object (matched by uid); ``True`` when it was present.

        Schemes whose collections are B+-trees remove the record in place
        (``O(copies · log_B n)`` I/Os); the ``combined`` scheme tombstones
        the uid and rebuilds globally once :data:`REBUILD_FRACTION` of the
        live set is dead — rebuild I/Os are charged to the counters.
        """
        stored = self._objects.pop(obj.uid, None)
        if stored is None:
            return False
        native = getattr(self._index, "delete", None)
        if callable(native):
            native(stored)
            return True
        self._tombstones.add(stored.uid)
        if rebuild_due(
            len(self._tombstones),
            len(self._objects),
            self.disk.block_size,
            self.REBUILD_FRACTION,
        ):
            self._rebuild()
        return True

    def bulk_load(self, objects: Iterable[ClassObject]) -> int:
        """Absorb a batch of objects in one global reorganisation.

        Every scheme's constructor *is* its bulk build (packed B+-trees /
        static 3-sided structures), so a batch of ``m`` costs one
        ``O(((n + m)/B) · copies)`` rebuild instead of ``m`` tree inserts.
        The replacement scheme is built *before* the old one is destroyed,
        so a failing batch (e.g. an unknown class name) raises with the
        indexer intact.
        """
        new = list(objects)
        fresh_record_keys(new, self._objects)
        merged = list(self._objects.values()) + new
        replacement = _METHODS[self.method](self.disk, self.hierarchy, merged)
        self._index.destroy()
        self._index = replacement
        self._tombstones = set()
        self.generation += 1
        for o in new:
            self._objects[o.uid] = o
        return len(new)

    def _rebuild(self) -> None:
        """Globally rebuild the active scheme from the live objects."""
        self._index.destroy()
        self._index = _METHODS[self.method](
            self.disk, self.hierarchy, list(self._objects.values())
        )
        self._tombstones = set()
        self.generation += 1

    def destroy(self) -> None:
        """Free every block of the underlying scheme (``Engine.drop_index``)."""
        self._index.destroy()
        self._objects = {}
        self._tombstones = set()

    def query(self, query_or_class: Any, low: Any = None, high: Any = None) -> Any:
        """Attribute range query over the full extent of a class.

        Two calling conventions:

        * ``query(class_name, low, high)`` — the original eager API,
          returning a ``List[ClassObject]``;
        * ``query(ClassRange(class_name, low, high))`` — the uniform
          :class:`~repro.engine.protocols.Index` API, returning a lazy
          :class:`~repro.engine.result.QueryResult`.
        """
        from repro.engine.queries import ClassRange
        from repro.engine.result import QueryResult

        if isinstance(query_or_class, ClassRange):
            q = query_or_class
            return QueryResult(
                lambda: self.iter_query(q.class_name, q.low, q.high),
                disk=self.disk,
                bound=self._bound_fn(),
                label=f"classes:{self.method}:{q.class_name}",
            )
        if not isinstance(query_or_class, str):
            # any other descriptor object (Stab, Range, ...) would otherwise
            # fall into the legacy path and die on a confusing KeyError
            raise TypeError(
                f"ClassIndexer cannot answer {type(query_or_class).__name__} "
                "queries; use ClassRange(class_name, low, high)"
            )
        # route through iter_query so the eager path sees the same
        # tombstone filtering as the lazy one
        return list(self.iter_query(query_or_class, low, high))

    def iter_query(self, class_name: str, low: Any, high: Any) -> Iterator[ClassObject]:
        """Stream the answer to a full-extent attribute range query.

        Tombstoned records (deleted but not yet swept by a global rebuild)
        are filtered out of the stream; the filter is free of I/O.
        """
        if not self._tombstones:
            return self._index.iter_query(class_name, low, high)
        tombstones = self._tombstones
        return (
            obj
            for obj in self._index.iter_query(class_name, low, high)
            if obj.uid not in tombstones
        )

    def _bound_fn(self):
        """The paper's predicted query bound for the active scheme."""
        n = max(len(self), 2)
        b = self.disk.block_size
        c = max(len(self.hierarchy), 2)
        if self.method == "simple":
            return lambda t: simple_class_query_bound(n, b, c, t)
        if self.method == "combined":
            return lambda t: combined_class_query_bound(n, b, t)
        # the baselines have no better guarantee than a B+-tree probe per
        # touched collection; report the single-probe bound as the floor
        return lambda t: btree_query_bound(n, b, t)

    def supports(self, q: Any) -> bool:
        """Full-extent attribute ranges (:class:`ClassRange`) over known classes."""
        from repro.engine.queries import ClassRange

        return isinstance(q, ClassRange) and q.class_name in self.hierarchy

    def cost(self, q: Any) -> Any:
        """The active scheme's query bound (Theorem 2.6 / 4.7 or the baseline)."""
        from repro.engine.protocols import Bound

        formula = {
            "simple": "log2 c * log_B n + t/B",
            "combined": "log_B n + log2 B + t/B",
        }.get(self.method, "log_B n + t/B")
        return Bound.of(formula, self._bound_fn())

    def bind(self, q: Any) -> Any:
        """Attach this indexer's hierarchy to ``ClassRange`` oracle nodes.

        The planner rewrites residual predicates through this hook so their
        ``matches`` oracles test full-extent membership (descendants) rather
        than exact class equality.
        """
        from dataclasses import replace

        from repro.engine.queries import And, ClassRange, Limit, Not, Or, OrderBy

        if isinstance(q, ClassRange) and q.hierarchy is None:
            return replace(q, hierarchy=self.hierarchy)
        if isinstance(q, (And, Or)):
            return type(q)(*(self.bind(p) for p in q.parts))
        if isinstance(q, Not):
            return Not(self.bind(q.part))
        if isinstance(q, Limit):
            return Limit(self.bind(q.part), q.n)
        if isinstance(q, OrderBy):
            return OrderBy(self.bind(q.part), q.key, reverse=q.reverse)
        return q

    def io_stats(self):
        """Live I/O counters of the backing store."""
        return self.disk.stats

    def block_count(self) -> int:
        """Disk blocks used by the underlying structures."""
        return self._index.block_count()

    @property
    def backend(self):
        """The underlying index object (for scheme-specific introspection)."""
        return self._index

    @property
    def live_count(self) -> int:
        """Number of live (non-deleted) records — what the cost bounds use."""
        return len(self._objects)

    def objects(self) -> List[ClassObject]:
        """The live objects (the engine catalog serializes these)."""
        return list(self._objects.values())

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClassIndexer(method={self.method!r}, classes={len(self.hierarchy)}, n={len(self)})"
