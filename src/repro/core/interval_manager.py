"""External dynamic interval management (Proposition 2.2 + Section 3).

Given a collection of intervals on secondary storage, support:

* **stabbing queries** — report every interval containing a query point;
* **interval-intersection queries** — report every interval intersecting a
  query interval;
* **insertions** of new intervals (the paper's structures are semi-dynamic).

Following the proof of Proposition 2.2 (Fig. 3), an intersection query
``[x1, x2]`` splits into

* intervals whose *left endpoint* lies in ``(x1, x2]`` (types 1 and 2) —
  answered by a B+-tree over left endpoints, and
* intervals that contain ``x1`` (types 3 and 4) — a stabbing query, i.e. a
  diagonal corner query at ``(x1, x1)`` over the points ``(low, high)``,
  answered by the metablock tree of Section 3.

Both substructures use ``O(n/B)`` blocks; queries cost
``O(log_B n + t/B)`` I/Os and inserts ``O(log_B n + (log_B n)^2/B)``
amortized I/Os (Theorems 3.2/3.7), so the whole manager inherits those
bounds.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List

from repro.analysis.complexity import metablock_query_bound, rebuild_due
from repro.records import fresh_record_keys
from repro.btree import BPlusTree
from repro.interval import Interval
from repro.metablock.geometry import PlanarPoint
from repro.metablock.dynamic_tree import AugmentedMetablockTree
from repro.metablock.static_tree import StaticMetablockTree


class ExternalIntervalManager:
    """I/O-efficient interval index (stabbing + intersection + insert).

    Parameters
    ----------
    disk:
        The simulated disk whose ``block_size`` is the page size ``B``.
    intervals:
        Initial intervals, bulk-loaded into the static organisation.
    dynamic:
        When ``True`` (default) the stabbing structure is the augmented
        (semi-dynamic) metablock tree and :meth:`insert` is available; when
        ``False`` the static metablock tree is used and the manager is
        read-only — this is the configuration Theorem 3.2 analyses.
    """

    #: capability flags of the :class:`~repro.engine.protocols.MutableIndex`
    #: tier — deletion is native (tombstoned stabbing structure + direct
    #: B+-tree removal, with a threshold-triggered global rebuild), and
    #: bulk loading is the static bulk construction over live + new records
    supports_deletes = True
    supports_bulk_load = True

    #: rebuild the stabbing structure once tombstones exceed this fraction
    #: of the live records (the classic global-rebuilding constant: work is
    #: ``O((n/B) log_B n)`` per rebuild, amortized ``O(log_B n)`` I/Os per
    #: delete, and space stays within ``1 + REBUILD_FRACTION`` of optimal)
    REBUILD_FRACTION = 0.5

    def __init__(self, disk, intervals: Iterable[Interval] = (), dynamic: bool = True) -> None:
        self.disk = disk
        self.dynamic = dynamic
        items = list(intervals)
        fresh_record_keys(items, context="the initial intervals")
        #: live records keyed by uid (insertion-ordered); dict-keyed so a
        #: delete is O(1) bookkeeping next to its O(log_B n) I/Os
        self._by_uid: Dict[Any, Interval] = {iv.uid: iv for iv in items}
        #: uids deleted from the stabbing structure but not yet rebuilt away
        self._tombstones: set = set()
        #: bumped on every global reorganisation (threshold rebuilds, bulk
        #: loads) — the query planner folds it into its plan-cache key, so
        #: cached strategies over this manager re-plan after a rebuild
        self.generation = 0

        points = [PlanarPoint(iv.low, iv.high, payload=iv) for iv in items]
        if dynamic:
            self._stabbing = AugmentedMetablockTree(disk, points)
        else:
            self._stabbing = StaticMetablockTree(disk, points)
        self._endpoints = BPlusTree.bulk_load(
            disk, ((iv.low, iv) for iv in items), name="left-endpoints"
        )

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, interval: Interval) -> None:
        """Insert a new interval (semi-dynamic; ``dynamic=True`` only)."""
        if not self.dynamic:
            raise NotImplementedError(
                "this manager was built static (Theorem 3.2); build it with "
                "dynamic=True for insertions (Theorem 3.7)"
            )
        if interval.uid in self._by_uid:
            raise ValueError(
                f"record uid {interval.uid} is already indexed ({interval!s}); "
                "records carry a process-unique uid, so inserting the same "
                "object twice would silently double-index it"
            )
        if interval.uid in self._tombstones:
            # re-inserting a record deleted earlier, while its stale point
            # still sits in the stabbing structure: sweep it out first —
            # the tombstone would hide the fresh copy, and dropping just
            # the tombstone would surface the stale duplicate (the tree
            # dedups by point identity, not payload identity)
            self._rebuild_stabbing()
        self._stabbing.insert(PlanarPoint(interval.low, interval.high, payload=interval))
        self._endpoints.insert(interval.low, interval)
        # bookkeeping last: a physical insert that raises (e.g. an
        # incomparable endpoint) must not leave a phantom live record that
        # would poison every later rebuild
        self._by_uid[interval.uid] = interval

    def delete(self, interval: Interval) -> bool:
        """Delete one interval (matched by uid); ``True`` when it was present.

        The paper leaves metablock-tree deletions open (Section 5); the
        manager closes the gap with the standard dynamization trick: the
        record is removed from the left-endpoint B+-tree natively
        (``O(log_B n)`` I/Os), tombstoned out of the stabbing structure's
        answers, and once tombstones reach :data:`REBUILD_FRACTION` of the
        live set the stabbing structure is globally rebuilt from the live
        records — all rebuild I/Os are charged to the disk counters, so
        the amortized delete cost stays ``O(log_B n)`` I/Os.
        """
        if self._by_uid.pop(interval.uid, None) is None:
            return False
        self._endpoints.delete(
            interval.low, match=lambda v, uid=interval.uid: v.uid == uid
        )
        self._tombstones.add(interval.uid)
        if rebuild_due(
            len(self._tombstones),
            len(self._by_uid),
            self.disk.block_size,
            self.REBUILD_FRACTION,
        ):
            self._rebuild_stabbing()
        return True

    def bulk_load(self, intervals: Iterable[Interval]) -> int:
        """Absorb a batch of intervals in one global reorganisation.

        Both substructures are rebuilt from the union of the live records
        and the batch — the metablock tree through its static bulk
        construction, the endpoint B+-tree through a bottom-up packed
        build — costing ``O(((n + m)/B) log_B(n + m))`` I/Os total instead
        of ``O(m (log_B n + (log_B n)^2/B))`` for ``m`` repeated inserts.
        Pending tombstones are swept for free along the way.  Works on
        static managers too: reconstruction, not insertion, is how the
        paper's static structures absorb batch updates.

        Both replacement structures are built *before* the old ones are
        destroyed or any bookkeeping changes, so a failing batch (e.g.
        records whose endpoints do not compare with the resident ones)
        raises with the manager intact.
        """
        new = list(intervals)
        fresh_record_keys(new, self._by_uid)
        combined = list(self._by_uid.values()) + new
        replacement = self._build_stabbing(combined)
        try:
            endpoints = BPlusTree.bulk_load(
                self.disk, ((iv.low, iv) for iv in combined), name="left-endpoints"
            )
        except BaseException:
            replacement.destroy()
            raise
        self._stabbing.destroy()
        self._endpoints.destroy()
        self._stabbing = replacement
        self._endpoints = endpoints
        self._by_uid = {iv.uid: iv for iv in combined}
        self._tombstones = set()
        self.generation += 1
        return len(new)

    def _build_stabbing(self, intervals: List[Interval]):
        """A fresh stabbing structure over ``intervals`` (mode-matched)."""
        points = [PlanarPoint(iv.low, iv.high, payload=iv) for iv in intervals]
        if self.dynamic:
            return AugmentedMetablockTree(self.disk, points)
        return StaticMetablockTree(self.disk, points)

    def _rebuild_stabbing(self) -> None:
        """Globally rebuild the stabbing structure from the live intervals.

        Only reached from :meth:`delete` (resident records, so the build
        cannot fail on them); the old structure is destroyed first to keep
        peak space at ``O(n/B)``.
        """
        self._stabbing.destroy()
        self._stabbing = self._build_stabbing(list(self._by_uid.values()))
        self._tombstones = set()
        self.generation += 1

    def destroy(self) -> None:
        """Free every block of both substructures (``Engine.drop_index``)."""
        self._stabbing.destroy()
        self._endpoints.destroy()
        self._by_uid = {}
        self._tombstones = set()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def stabbing_query(self, x: Any) -> List[Interval]:
        """All intervals containing ``x`` (``O(log_B n + t/B)`` I/Os)."""
        return list(self.iter_stabbing(x))

    def intersection_query(self, low: Any, high: Any) -> List[Interval]:
        """All intervals intersecting ``[low, high]`` (``O(log_B n + t/B)`` I/Os)."""
        return list(self.iter_intersection(low, high))

    def iter_stabbing(self, x: Any) -> Iterator[Interval]:
        """Stream the intervals containing ``x``, block by block.

        Tombstoned records (deleted but not yet swept by a global rebuild)
        are filtered out of the stream; the filter is free of I/O.
        """
        if not self._tombstones:
            for p in self._stabbing.iter_diagonal_query(x):
                yield p.payload
            return
        tombstones = self._tombstones
        for p in self._stabbing.iter_diagonal_query(x):
            if p.payload.uid not in tombstones:
                yield p.payload

    def iter_intersection(self, low: Any, high: Any) -> Iterator[Interval]:
        """Stream the intervals intersecting ``[low, high]``, block by block."""
        if high < low:
            return
        # types 3 and 4: intervals that contain the left end of the query
        yield from self.iter_stabbing(low)
        # types 1 and 2: intervals whose left endpoint starts strictly inside
        # the query — the open lower bound replaces the old `key > low`
        # post-filter (same block reads; boundary records are now skipped
        # inside the B+-tree scan instead of discarded by the caller)
        for _, interval in self._endpoints.iter_range(low, high, min_inclusive=False):
            yield interval

    # ------------------------------------------------------------------ #
    # uniform Index surface (see repro.engine.protocols.Index)
    # ------------------------------------------------------------------ #
    def query(self, q: Any) -> "Any":
        """Answer an engine query descriptor with a lazy ``QueryResult``.

        * :class:`~repro.engine.queries.Stab` -> stabbing query at ``q.x``;
        * :class:`~repro.engine.queries.Range` -> intersection query with
          ``[q.low, q.high]``.
        """
        from repro.engine.queries import Range, Stab
        from repro.engine.result import QueryResult

        n, b = max(len(self), 2), self.disk.block_size
        if isinstance(q, Stab):
            return QueryResult(
                lambda: self.iter_stabbing(q.x),
                disk=self.disk,
                bound=lambda t: metablock_query_bound(n, b, t),
                label=f"intervals:stab@{q.x}",
            )
        if isinstance(q, Range):
            return QueryResult(
                lambda: self.iter_intersection(q.low, q.high),
                disk=self.disk,
                bound=lambda t: metablock_query_bound(n, b, t),
                label=f"intervals:overlap[{q.low},{q.high}]",
            )
        raise TypeError(f"ExternalIntervalManager cannot answer {type(q).__name__} queries")

    def supports(self, q: Any) -> bool:
        """Stabbing (:class:`Stab`) and intersection (:class:`Range`) shapes."""
        from repro.engine.queries import Range, Stab

        return isinstance(q, (Stab, Range))

    def cost(self, q: Any) -> "Any":
        """Theorem 3.2/3.7: ``O(log_B n + t/B)`` I/Os per query."""
        from repro.engine.protocols import Bound

        n, b = max(len(self), 2), self.disk.block_size
        return Bound.of("log_B n + t/B", lambda t: metablock_query_bound(n, b, t))

    def io_stats(self):
        """Live I/O counters of the backing store."""
        return self.disk.stats

    # ------------------------------------------------------------------ #
    # accounting / introspection
    # ------------------------------------------------------------------ #
    def block_count(self) -> int:
        """Total blocks used by both substructures (``O(n/B)``)."""
        return self._stabbing.block_count() + self._endpoints.block_count()

    def intervals(self) -> List[Interval]:
        return list(self._by_uid.values())

    @property
    def live_count(self) -> int:
        """Number of live (non-deleted) records — what the cost bounds use."""
        return len(self._by_uid)

    def __len__(self) -> int:
        return len(self._by_uid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "dynamic" if self.dynamic else "static"
        return f"ExternalIntervalManager(n={len(self)}, {mode}, B={self.disk.block_size})"
