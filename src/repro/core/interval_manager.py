"""External dynamic interval management (Proposition 2.2 + Section 3).

Given a collection of intervals on secondary storage, support:

* **stabbing queries** — report every interval containing a query point;
* **interval-intersection queries** — report every interval intersecting a
  query interval;
* **insertions** of new intervals (the paper's structures are semi-dynamic).

Following the proof of Proposition 2.2 (Fig. 3), an intersection query
``[x1, x2]`` splits into

* intervals whose *left endpoint* lies in ``(x1, x2]`` (types 1 and 2) —
  answered by a B+-tree over left endpoints, and
* intervals that contain ``x1`` (types 3 and 4) — a stabbing query, i.e. a
  diagonal corner query at ``(x1, x1)`` over the points ``(low, high)``,
  answered by the metablock tree of Section 3.

Both substructures use ``O(n/B)`` blocks; queries cost
``O(log_B n + t/B)`` I/Os and inserts ``O(log_B n + (log_B n)^2/B)``
amortized I/Os (Theorems 3.2/3.7), so the whole manager inherits those
bounds.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List

from repro.analysis.complexity import metablock_query_bound
from repro.btree import BPlusTree
from repro.interval import Interval
from repro.metablock.geometry import PlanarPoint
from repro.metablock.dynamic_tree import AugmentedMetablockTree
from repro.metablock.static_tree import StaticMetablockTree


class ExternalIntervalManager:
    """I/O-efficient interval index (stabbing + intersection + insert).

    Parameters
    ----------
    disk:
        The simulated disk whose ``block_size`` is the page size ``B``.
    intervals:
        Initial intervals, bulk-loaded into the static organisation.
    dynamic:
        When ``True`` (default) the stabbing structure is the augmented
        (semi-dynamic) metablock tree and :meth:`insert` is available; when
        ``False`` the static metablock tree is used and the manager is
        read-only — this is the configuration Theorem 3.2 analyses.
    """

    def __init__(self, disk, intervals: Iterable[Interval] = (), dynamic: bool = True) -> None:
        self.disk = disk
        self.dynamic = dynamic
        items = list(intervals)
        self._intervals: List[Interval] = list(items)

        points = [PlanarPoint(iv.low, iv.high, payload=iv) for iv in items]
        if dynamic:
            self._stabbing = AugmentedMetablockTree(disk, points)
        else:
            self._stabbing = StaticMetablockTree(disk, points)
        self._endpoints = BPlusTree.bulk_load(
            disk, ((iv.low, iv) for iv in items), name="left-endpoints"
        )

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, interval: Interval) -> None:
        """Insert a new interval (semi-dynamic; ``dynamic=True`` only)."""
        if not self.dynamic:
            raise NotImplementedError(
                "this manager was built static (Theorem 3.2); build it with "
                "dynamic=True for insertions (Theorem 3.7)"
            )
        self._intervals.append(interval)
        self._stabbing.insert(PlanarPoint(interval.low, interval.high, payload=interval))
        self._endpoints.insert(interval.low, interval)

    def delete(self, interval: Interval) -> None:
        """Deletions are an open problem in the paper (Section 5)."""
        raise NotImplementedError(
            "the metablock tree is semi-dynamic: deletions are left open by the paper"
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def stabbing_query(self, x: Any) -> List[Interval]:
        """All intervals containing ``x`` (``O(log_B n + t/B)`` I/Os)."""
        return list(self.iter_stabbing(x))

    def intersection_query(self, low: Any, high: Any) -> List[Interval]:
        """All intervals intersecting ``[low, high]`` (``O(log_B n + t/B)`` I/Os)."""
        return list(self.iter_intersection(low, high))

    def iter_stabbing(self, x: Any) -> Iterator[Interval]:
        """Stream the intervals containing ``x``, block by block."""
        for p in self._stabbing.iter_diagonal_query(x):
            yield p.payload

    def iter_intersection(self, low: Any, high: Any) -> Iterator[Interval]:
        """Stream the intervals intersecting ``[low, high]``, block by block."""
        if high < low:
            return
        # types 3 and 4: intervals that contain the left end of the query
        yield from self.iter_stabbing(low)
        # types 1 and 2: intervals whose left endpoint starts strictly inside
        # the query — the open lower bound replaces the old `key > low`
        # post-filter (same block reads; boundary records are now skipped
        # inside the B+-tree scan instead of discarded by the caller)
        for _, interval in self._endpoints.iter_range(low, high, min_inclusive=False):
            yield interval

    # ------------------------------------------------------------------ #
    # uniform Index surface (see repro.engine.protocols.Index)
    # ------------------------------------------------------------------ #
    def query(self, q: Any) -> "Any":
        """Answer an engine query descriptor with a lazy ``QueryResult``.

        * :class:`~repro.engine.queries.Stab` -> stabbing query at ``q.x``;
        * :class:`~repro.engine.queries.Range` -> intersection query with
          ``[q.low, q.high]``.
        """
        from repro.engine.queries import Range, Stab
        from repro.engine.result import QueryResult

        n, b = max(len(self), 2), self.disk.block_size
        if isinstance(q, Stab):
            return QueryResult(
                lambda: self.iter_stabbing(q.x),
                disk=self.disk,
                bound=lambda t: metablock_query_bound(n, b, t),
                label=f"intervals:stab@{q.x}",
            )
        if isinstance(q, Range):
            return QueryResult(
                lambda: self.iter_intersection(q.low, q.high),
                disk=self.disk,
                bound=lambda t: metablock_query_bound(n, b, t),
                label=f"intervals:overlap[{q.low},{q.high}]",
            )
        raise TypeError(f"ExternalIntervalManager cannot answer {type(q).__name__} queries")

    def supports(self, q: Any) -> bool:
        """Stabbing (:class:`Stab`) and intersection (:class:`Range`) shapes."""
        from repro.engine.queries import Range, Stab

        return isinstance(q, (Stab, Range))

    def cost(self, q: Any) -> "Any":
        """Theorem 3.2/3.7: ``O(log_B n + t/B)`` I/Os per query."""
        from repro.engine.protocols import Bound

        n, b = max(len(self), 2), self.disk.block_size
        return Bound.of("log_B n + t/B", lambda t: metablock_query_bound(n, b, t))

    def io_stats(self):
        """Live I/O counters of the backing store."""
        return self.disk.stats

    # ------------------------------------------------------------------ #
    # accounting / introspection
    # ------------------------------------------------------------------ #
    def block_count(self) -> int:
        """Total blocks used by both substructures (``O(n/B)``)."""
        return self._stabbing.block_count() + self._endpoints.block_count()

    def intervals(self) -> List[Interval]:
        return list(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "dynamic" if self.dynamic else "static"
        return f"ExternalIntervalManager(n={len(self)}, {mode}, B={self.disk.block_size})"
