"""Public facade of the reproduction.

* :class:`~repro.core.interval_manager.ExternalIntervalManager` — external
  dynamic interval management (stabbing + intersection queries) built on the
  metablock tree and a B+-tree, the paper's primary application
  (Proposition 2.2 + Section 3).
* :class:`~repro.core.class_indexer.ClassIndexer` — one entry point over the
  class-indexing schemes of Sections 2.2 and 4.
"""

from repro.core.interval_manager import ExternalIntervalManager
from repro.core.class_indexer import ClassIndexer

__all__ = ["ClassIndexer", "ExternalIntervalManager"]
