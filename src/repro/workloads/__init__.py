"""Workload generators used by the examples, tests and benchmarks."""

from repro.workloads.generators import (
    clustered_intervals,
    diagonal_staircase_points,
    nested_intervals,
    random_class_objects,
    random_hierarchy,
    balanced_hierarchy,
    chain_hierarchy,
    star_hierarchy,
    random_intervals,
    random_points,
    interval_points,
)

__all__ = [
    "balanced_hierarchy",
    "chain_hierarchy",
    "clustered_intervals",
    "diagonal_staircase_points",
    "interval_points",
    "nested_intervals",
    "random_class_objects",
    "random_hierarchy",
    "random_intervals",
    "random_points",
    "star_hierarchy",
]
