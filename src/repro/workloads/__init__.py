"""Workload generators and the benchmark scenario matrix."""

from repro.workloads.generators import (
    clustered_intervals,
    diagonal_staircase_points,
    nested_intervals,
    random_class_objects,
    random_hierarchy,
    balanced_hierarchy,
    chain_hierarchy,
    star_hierarchy,
    random_intervals,
    random_points,
    interval_points,
    zipf_choices,
)
from repro.workloads.scenarios import run_matrix

__all__ = [
    "balanced_hierarchy",
    "chain_hierarchy",
    "clustered_intervals",
    "diagonal_staircase_points",
    "interval_points",
    "nested_intervals",
    "random_class_objects",
    "random_hierarchy",
    "random_intervals",
    "random_points",
    "run_matrix",
    "star_hierarchy",
    "zipf_choices",
]
