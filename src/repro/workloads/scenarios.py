"""The engine workload scenario matrix (what ``BENCH_workloads.json`` records).

One deterministic harness, shared by ``benchmarks/bench_workloads.py`` and
the CLI's ``bench workloads`` subcommand, that measures the read hot path
under the query distributions a real deployment sees:

* **stab-heavy** — point stabbing over a multi-index collection, the
  paper's flagship query, in three planner modes: *adhoc* (candidates
  re-enumerated and re-costed on every call — what the engine did before
  the plan cache), *cached* (``Engine.query`` through the signature-keyed
  plan cache) and *prepared* (``Engine.prepare`` + ``run(**params)``, the
  fast path: no enumeration, bulk I/O accounting);
* **endpoint-heavy** — ``EndpointRange`` windows served by the endpoint
  B+-trees, adhoc vs prepared;
* **class-hierarchy** — attribute ranges over full class extents
  (Theorem 2.6's workload), adhoc vs prepared;
* **zipf-skewed** — stabbing with Zipf-distributed hot spots, the
  distribution plan caching is built for;
* **mixed read/write** — interleaved insert / prepared-query / delete on a
  dynamic collection, exercising generation-bump invalidation under
  threshold-triggered rebuilds.

Every scenario reports ``ops_per_sec`` (best of ``repeat`` passes) next to
``ios_per_query``; the paired adhoc/prepared legs run the *same* query
stream, so their I/O counts must be identical — the speedup is pure
planning/bookkeeping overhead removed, never a different access path.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Dict, List, Tuple

from repro.durability.wal import bench_fragment as wal_bench_fragment
from repro.engine import ClassRange, EndpointRange, Engine, Param, Stab
from repro.io import SimulatedDisk
from repro.workloads.generators import (
    balanced_hierarchy,
    random_class_objects,
    random_intervals,
    zipf_choices,
)


def report(payload: Dict[str, Any], out: Any = None) -> None:
    """Print the human-readable scenario table (shared by CLI + benchmark).

    ``out`` (a path) additionally writes the machine-readable JSON payload.
    """
    import json

    for row in payload["scenarios"]:
        if "ios_per_op" in row:
            cost = f"ios/op={row['ios_per_op']:7.2f}"
        else:
            cost = f"ios/q={row['ios_per_query']:8.2f}"
        print(f"  {row['name']:28s} {cost} ops/s={row['ops_per_sec']:10.1f}")
    summary = payload["summary"]
    print(f"  prepared speedup vs adhoc: {summary['prepared_speedup_vs_adhoc']}x "
          f"(identical I/O: {summary['prepared_ios_match_adhoc']})")
    if out:
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2)
            print(file=fh)
        print(f"  wrote {out}")


def gate_failures(payload: Dict[str, Any], threshold: float = 0.8) -> List[str]:
    """The perf-gate checks CI enforces; empty list means the gate passes.

    The prepared path must (a) stay at or above ``threshold`` × the ad-hoc
    path's ops/sec on the stab-heavy scenario and (b) perform *identical*
    I/O — the speedup must come from planning/bookkeeping overhead
    removed, never from a different (possibly worse-bounded) access path.
    The default threshold is deliberately below 1.0: wall-clock on shared
    CI runners is noisy at smoke sizes, and a real regression (losing the
    ~2× measured win) lands far below 0.8 — while the I/O check stays
    exact.
    """
    rows = {row["name"]: row for row in payload["scenarios"]}
    adhoc, prepared = rows["stab/adhoc"], rows["stab/prepared"]
    failures = []
    if prepared["ops_per_sec"] < threshold * adhoc["ops_per_sec"]:
        failures.append(
            f"prepared stab path regressed: {prepared['ops_per_sec']} ops/s "
            f"< {threshold} x adhoc {adhoc['ops_per_sec']} ops/s"
        )
    if prepared["ios_per_query"] != adhoc["ios_per_query"]:
        failures.append(
            f"prepared stab path does different I/O: "
            f"{prepared['ios_per_query']} vs adhoc {adhoc['ios_per_query']} ios/q"
        )
    return failures


def run_gate(payload: Dict[str, Any], threshold: float = 0.8) -> int:
    """Print gate failures to stderr; the process exit code (0/1).

    The one gate implementation both ``benchmarks/bench_workloads.py`` and
    the CLI ``bench`` subcommand call, so the checks and their output
    format cannot drift apart.
    """
    import sys

    failures = gate_failures(payload, threshold)
    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    return 1 if failures else 0


def _timed(fn: Callable[[], Any], repeat: int) -> Tuple[Any, float]:
    """(result, best wall-clock seconds) over ``repeat`` full passes."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _measured(engine: Engine, fn: Callable[[], int], queries: int, repeat: int) -> Dict[str, Any]:
    """One scenario row: run once counting I/Os, then time ``repeat`` passes."""
    with engine.measure() as m:
        outputs = fn()
    _, best = _timed(fn, repeat)
    return {
        "queries": queries,
        "avg_output": round(outputs / queries, 2),
        "ios_per_query": round(m.ios / queries, 2),
        "ops_per_sec": round(queries / best, 1) if best > 0 else float("inf"),
    }


def run_matrix(
    n: int = 10_000,
    block_size: int = 16,
    queries: int = 25,
    repeat: int = 3,
    seed: int = 5,
) -> Dict[str, Any]:
    """Run every scenario; returns the ``BENCH_workloads.json`` payload.

    ``n``/``block_size``/``seed`` default to the values
    ``benchmarks/bench_engine.py`` uses, so ``ios_per_query`` is directly
    comparable with ``BENCH_engine.json`` for the shared shapes (stab,
    endpoint).
    """
    engine = Engine(SimulatedDisk(block_size))
    intervals = random_intervals(n, seed=seed, mean_length=20.0)
    coll = engine.create_collection("c", intervals, dynamic=False)
    hierarchy = balanced_hierarchy(depth=3, fanout=3)
    engine.create_class_index(
        "classes", hierarchy, random_class_objects(hierarchy, n, seed=seed + 2),
        method="combined",
    )

    rnd = random.Random(6)  # bench_engine's query stream, for comparability
    points = [rnd.uniform(0, 1000) for _ in range(queries)]
    windows = [(x, x + 5.0) for x in points]
    class_rnd = random.Random(seed + 3)
    classes = sorted(hierarchy.classes(), key=hierarchy.subtree_size, reverse=True)
    class_queries = [
        (class_rnd.choice(classes[: max(4, len(classes) // 4)]), lo, lo + 60.0)
        for lo in (class_rnd.uniform(0, 900) for _ in range(queries))
    ]
    hot_rnd = random.Random(seed + 4)
    hotspots = [hot_rnd.uniform(0, 1000) for _ in range(32)]
    zipf_points = zipf_choices(hotspots, queries, exponent=1.2, seed=seed + 5)

    planner = coll.planner
    scenarios: List[Dict[str, Any]] = []

    def add(name: str, fn: Callable[[], int]) -> Dict[str, Any]:
        row = {"name": name, **_measured(engine, fn, queries, repeat)}
        scenarios.append(row)
        return row

    # -- stab-heavy: the prepared-vs-adhoc headline ---------------------- #
    def stab_adhoc() -> int:
        total = 0
        for x in points:
            plan = planner.plan(Stab(x), use_cache=False)
            total += len(planner.execute(plan).all())
        return total

    def stab_cached() -> int:
        return sum(len(engine.query("c", Stab(x)).all()) for x in points)

    stab_prepared_q = engine.prepare("c", Stab(Param("x")))

    def stab_prepared() -> int:
        return sum(len(stab_prepared_q.run(x=x).all()) for x in points)

    adhoc_row = add("stab/adhoc", stab_adhoc)
    add("stab/cached", stab_cached)
    prepared_row = add("stab/prepared", stab_prepared)

    # -- endpoint-heavy -------------------------------------------------- #
    def endpoint_adhoc() -> int:
        total = 0
        for lo, hi in windows:
            plan = planner.plan(EndpointRange("low", lo, hi), use_cache=False)
            total += len(planner.execute(plan).all())
        return total

    endpoint_prepared_q = engine.prepare(
        "c", EndpointRange("low", Param("lo"), Param("hi"))
    )

    def endpoint_prepared() -> int:
        return sum(
            len(endpoint_prepared_q.run(lo=lo, hi=hi).all()) for lo, hi in windows
        )

    add("endpoint/adhoc", endpoint_adhoc)
    add("endpoint/prepared", endpoint_prepared)

    # -- class-hierarchy ranges ------------------------------------------ #
    # route the ad-hoc leg through the single-index planner with the cache
    # off, mirroring the stab/endpoint legs — engine.query would take the
    # planner-free direct path for a plain leaf on a plain index, which
    # measures no planning at all
    class_planner = engine.planner("classes")

    def class_adhoc() -> int:
        total = 0
        for cls, lo, hi in class_queries:
            plan = class_planner.plan(ClassRange(cls, lo, hi), use_cache=False)
            total += len(class_planner.execute(plan).all())
        return total

    class_prepared = {
        cls: engine.prepare(
            "classes", ClassRange(cls, Param("lo"), Param("hi"))
        )
        for cls in {cls for cls, _, _ in class_queries}
    }

    def class_prepared_run() -> int:
        return sum(
            len(class_prepared[cls].run(lo=lo, hi=hi).all())
            for cls, lo, hi in class_queries
        )

    add("class/adhoc", class_adhoc)
    add("class/prepared", class_prepared_run)

    # -- Zipf-skewed stabbing -------------------------------------------- #
    def zipf_adhoc() -> int:
        total = 0
        for x in zipf_points:
            plan = planner.plan(Stab(x), use_cache=False)
            total += len(planner.execute(plan).all())
        return total

    def zipf_prepared() -> int:
        return sum(len(stab_prepared_q.run(x=x).all()) for x in zipf_points)

    add("zipf/adhoc", zipf_adhoc)
    add("zipf/prepared", zipf_prepared)

    # -- mixed read/write (one-shot: writes are not idempotent) ---------- #
    rw_engine = Engine(SimulatedDisk(block_size))
    rw_coll = rw_engine.create_collection(
        "rw", random_intervals(n // 2, seed=seed + 7, mean_length=20.0), dynamic=True
    )
    rw_prepared = rw_engine.prepare("rw", Stab(Param("x")))
    fresh = random_intervals(queries, seed=seed + 8, mean_length=20.0)
    ops = 0
    outputs = 0
    start = time.perf_counter()
    with rw_engine.measure() as m:
        for i, iv in enumerate(fresh):
            rw_coll.insert(iv)
            outputs += len(rw_prepared.run(x=points[i % len(points)]).all())
            rw_coll.delete(iv)
            ops += 3
    elapsed = time.perf_counter() - start
    scenarios.append({
        "name": "mixed/insert-query-delete",
        "queries": queries,
        "avg_output": round(outputs / queries, 2),
        # writes dominate this scenario's I/O, so a per-query figure would
        # mislead: the cost is reported per operation under its own key
        "ios_per_op": round(m.ios / ops, 2),
        "ops_per_sec": round(ops / elapsed, 1) if elapsed > 0 else float("inf"),
    })

    speedup = (
        prepared_row["ops_per_sec"] / adhoc_row["ops_per_sec"]
        if adhoc_row["ops_per_sec"]
        else float("inf")
    )
    return {
        "benchmark": "workloads",
        "n": n,
        "block_size": block_size,
        "queries": queries,
        "generated_by": "python -m benchmarks.bench_workloads",
        "scenarios": scenarios,
        "summary": {
            "prepared_speedup_vs_adhoc": round(speedup, 2),
            "prepared_ios_match_adhoc": (
                prepared_row["ios_per_query"] == adhoc_row["ios_per_query"]
            ),
            "plan_cache": planner.cache_info(),
            # the uniform durability block every BENCH_*.json carries —
            # zeros here: the read matrix and the mixed leg run without a
            # WAL attached (the durability benchmark owns those numbers)
            "wal": wal_bench_fragment(rw_engine),
        },
    }
