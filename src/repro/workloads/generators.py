"""Synthetic workload generators.

The paper has no experimental section, so the reproduction supplies the
workloads its analysis implicitly talks about:

* interval collections (uniform, clustered, nested) for the interval
  management / constraint indexing experiments;
* planar point sets, both arbitrary and of the ``y >= x`` interval-endpoint
  shape, plus the staircase set of Proposition 3.3's lower-bound argument;
* class hierarchies of several shapes (random, balanced, chain — the
  "degenerate" hierarchy of Lemma 4.3 — and star — the hierarchy of
  Theorem 2.8's lower bound) and object populations over them.

Every generator takes an explicit ``seed`` so tests and benchmarks are
deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.interval import Interval
from repro.metablock.geometry import PlanarPoint


# --------------------------------------------------------------------------- #
# intervals
# --------------------------------------------------------------------------- #
def random_intervals(
    n: int,
    domain: Tuple[float, float] = (0.0, 1_000.0),
    mean_length: float = 50.0,
    seed: int = 0,
) -> List[Interval]:
    """Uniformly placed intervals with exponentially distributed lengths."""
    rnd = random.Random(seed)
    lo, hi = domain
    out = []
    for i in range(n):
        start = rnd.uniform(lo, hi)
        length = rnd.expovariate(1.0 / mean_length) if mean_length > 0 else 0.0
        out.append(Interval(start, start + length, payload=i))
    return out


def clustered_intervals(
    n: int,
    clusters: int = 10,
    domain: Tuple[float, float] = (0.0, 1_000.0),
    spread: float = 5.0,
    mean_length: float = 20.0,
    seed: int = 0,
) -> List[Interval]:
    """Intervals whose left endpoints concentrate around a few cluster centres."""
    rnd = random.Random(seed)
    lo, hi = domain
    centres = [rnd.uniform(lo, hi) for _ in range(max(1, clusters))]
    out = []
    for i in range(n):
        centre = rnd.choice(centres)
        start = rnd.gauss(centre, spread)
        length = rnd.expovariate(1.0 / mean_length) if mean_length > 0 else 0.0
        out.append(Interval(start, start + length, payload=i))
    return out


def nested_intervals(
    n: int, domain: Tuple[float, float] = (0.0, 1_000.0), seed: int = 0
) -> List[Interval]:
    """A telescope of nested intervals — the worst case for stabbing output size."""
    rnd = random.Random(seed)
    lo, hi = domain
    out = []
    for i in range(n):
        shrink = (i + 1) / (2.0 * n + 1.0)
        jitter = rnd.uniform(0, (hi - lo) * 0.001)
        out.append(Interval(lo + (hi - lo) * shrink + jitter, hi - (hi - lo) * shrink + jitter, payload=i))
    return out


def interval_points(intervals: Sequence[Interval]) -> List[PlanarPoint]:
    """Map intervals to the planar points ``(low, high)`` (Proposition 2.2)."""
    return [PlanarPoint(iv.low, iv.high, payload=iv) for iv in intervals]


# --------------------------------------------------------------------------- #
# points
# --------------------------------------------------------------------------- #
def random_points(
    n: int, domain: Tuple[float, float] = (0.0, 1_000.0), seed: int = 0
) -> List[PlanarPoint]:
    """Uniform points in a square (used by the 3-sided structures)."""
    rnd = random.Random(seed)
    lo, hi = domain
    return [PlanarPoint(rnd.uniform(lo, hi), rnd.uniform(lo, hi), payload=i) for i in range(n)]


def diagonal_staircase_points(n: int) -> List[PlanarPoint]:
    """The set ``{(x, x+1) : x in 1..n}`` from the lower bound of Proposition 3.3."""
    return [PlanarPoint(float(x), float(x + 1), payload=x) for x in range(1, n + 1)]


def zipf_choices(
    values: Sequence, n: int, exponent: float = 1.2, seed: int = 0
) -> List:
    """``n`` picks from ``values`` with Zipf-skewed frequencies.

    The first element of ``values`` is the hottest; element at rank ``r``
    is drawn proportionally to ``1 / r**exponent``.  Models the skewed
    query distributions real traffic exhibits (a few hot keys absorb most
    lookups) — the case plan caching is designed for.
    """
    if not values or n <= 0:
        return []
    rnd = random.Random(seed)
    weights = [1.0 / (rank ** exponent) for rank in range(1, len(values) + 1)]
    return rnd.choices(list(values), weights=weights, k=n)


# --------------------------------------------------------------------------- #
# class hierarchies and objects
# --------------------------------------------------------------------------- #
def random_hierarchy(c: int, seed: int = 0, roots: int = 1) -> ClassHierarchy:
    """A random recursive forest with ``c`` classes and the given number of roots."""
    if c <= 0:
        return ClassHierarchy()
    rnd = random.Random(seed)
    roots = max(1, min(roots, c))
    hierarchy = ClassHierarchy()
    names = [f"C{i}" for i in range(c)]
    for i, name in enumerate(names):
        if i < roots:
            hierarchy.add_class(name)
        else:
            hierarchy.add_class(name, names[rnd.randrange(0, i)])
    return hierarchy


def balanced_hierarchy(depth: int, fanout: int, prefix: str = "N") -> ClassHierarchy:
    """A complete ``fanout``-ary hierarchy of the given depth."""
    hierarchy = ClassHierarchy()
    hierarchy.add_class(f"{prefix}0")
    frontier = [f"{prefix}0"]
    counter = 1
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                name = f"{prefix}{counter}"
                counter += 1
                hierarchy.add_class(name, parent)
                next_frontier.append(name)
        frontier = next_frontier
    return hierarchy


def chain_hierarchy(c: int, prefix: str = "D") -> ClassHierarchy:
    """The *degenerate* hierarchy of Lemma 4.3: a single chain of ``c`` classes."""
    hierarchy = ClassHierarchy()
    previous: Optional[str] = None
    for i in range(c):
        name = f"{prefix}{i}"
        hierarchy.add_class(name, previous)
        previous = name
    return hierarchy


def star_hierarchy(c: int, prefix: str = "S") -> ClassHierarchy:
    """The hierarchy of Theorem 2.8: one root with ``c - 1`` leaf children."""
    hierarchy = ClassHierarchy()
    hierarchy.add_class(f"{prefix}root")
    for i in range(max(0, c - 1)):
        hierarchy.add_class(f"{prefix}{i}", f"{prefix}root")
    return hierarchy


def random_class_objects(
    hierarchy: ClassHierarchy,
    n: int,
    domain: Tuple[float, float] = (0.0, 1_000.0),
    seed: int = 0,
    skew_to_leaves: bool = False,
) -> List[ClassObject]:
    """Objects with uniform attribute values spread over the hierarchy's classes."""
    rnd = random.Random(seed)
    classes = hierarchy.classes()
    if skew_to_leaves:
        leaves = [c for c in classes if hierarchy.is_leaf(c)]
        classes = leaves or classes
    lo, hi = domain
    return [
        ClassObject(rnd.uniform(lo, hi), rnd.choice(classes), payload=i) for i in range(n)
    ]
