"""The concurrent workload driver (what ``BENCH_concurrency.json`` records).

Replays the PR-4 scenario matrix from **N client threads** against a live
:class:`~repro.server.ReproServer`, with every answer checked against a
single-threaded brute-force model *while the interleaving happens*:

* **stab/read-only** and **endpoint/read-only** — N closed-loop
  connections hammer a shared, quiescent collection with the planner's
  flagship shapes (request → verify → think time → repeat; see
  :func:`run_matrix` for the load model); every response must equal the
  local oracle (``q.matches`` over the driver's copy of the stored
  records) exactly, and every per-request I/O count must stay within the
  planner's documented ``BOUND_SLACK`` of the paper's bound, which the
  server can report per request because session I/O attribution is
  per-thread.
* **mixed/insert-query-delete** — each thread owns a private collection
  and loops insert → prepared stab (checked against its deterministic
  local model) → delete, while also reading the shared base collection;
  writes from all threads contend for the engine's exclusive write turns.
* **shared/snapshot** — all threads write *transient* records into one
  shared collection while querying it.  Exact answers are unknowable
  under interleaving, so the check is the consistency model itself:
  every answer must contain all matching base records and nothing but
  base records plus currently-possible transients (a reader never sees a
  half-applied write or a phantom).

Throughput (ops/s), latency (p50/p99) and ios/query are recorded per
thread count; the read-only scenarios are the scaling headline — a
single closed-loop client leaves the server idle during its think time,
and concurrent sessions fill it, so 4 threads comfortably beat twice the
1-thread figure on the stab scenario.

The driver talks pure wire protocol: it needs only ``host``/``port``.
:func:`spawn_server` boots a subprocess server for standalone use (the
benchmark and ``repro bench concurrency``); CI instead starts ``repro
serve`` itself and passes ``--connect``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.durability.wal import (
    bench_fragment_from_wire as wal_bench_fragment_from_wire,
)
from repro.engine.planner import BOUND_SLACK, BOUND_SLACK_PAGES
from repro.engine.queries import EndpointRange, Param, Stab
from repro.interval import Interval
from repro.server.client import ReproClient
from repro.workloads.generators import random_intervals

#: collection names the driver creates on the server
BASE = "base"
SHARED = "shared"


# --------------------------------------------------------------------------- #
# spawning a server to drive
# --------------------------------------------------------------------------- #
def _spawn_and_wait(
    cmd: List[str], *, timeout: float, what: str
) -> Tuple[subprocess.Popen, str, int]:
    """Start ``cmd`` with this package importable; wait for ``listening on``."""
    import repro

    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (pkg_root, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    deadline = time.monotonic() + timeout
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            address = line.rsplit(" ", 1)[-1].strip()
            host, port = address.rsplit(":", 1)
            return proc, host, int(port)
        if not line or proc.poll() is not None:
            raise RuntimeError(f"{what} failed to start: {line!r}")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError(f"{what} did not report an address in time")


def spawn_server(
    *,
    block_size: int = 16,
    buffer_pages: Optional[int] = None,
    timeout: float = 30.0,
) -> Tuple[subprocess.Popen, str, int]:
    """Start ``python -m repro serve --port 0`` and wait for its address.

    Returns ``(process, host, port)``.  The caller owns the process; end
    it with a wire ``shutdown`` (then :func:`wait_for_clean_exit`) or by
    terminating it.
    """
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
           "--block-size", str(block_size)]
    if buffer_pages:
        cmd += ["--buffer-pages", str(buffer_pages)]
    return _spawn_and_wait(cmd, timeout=timeout, what="server")


def spawn_cluster(
    *,
    shards: int,
    strategy: str = "hash",
    block_size: int = 16,
    directory: Optional[str] = None,
    domain: Tuple[float, float] = (0.0, 1000.0),
    commit_latency_ms: float = 0.0,
    timeout: float = 120.0,
) -> Tuple[subprocess.Popen, str, int]:
    """Start ``python -m repro cluster serve`` and wait for its frontend.

    Same contract as :func:`spawn_server` — the address speaks the same
    protocol, so every driver runs unchanged through the router.  With
    ``directory`` the shards are WAL-durable FileDisk databases (that is
    what makes N shards N *physical* write pipelines); without it they
    are in-memory.
    """
    cmd = [sys.executable, "-m", "repro", "cluster", "serve", "--port", "0",
           "--shards", str(shards), "--strategy", strategy,
           "--block-size", str(block_size),
           "--domain", str(domain[0]), str(domain[1])]
    if directory:
        cmd += ["--dir", directory]
    if commit_latency_ms:
        cmd += ["--commit-latency-ms", str(commit_latency_ms)]
    return _spawn_and_wait(cmd, timeout=timeout, what="cluster")


def wait_for_clean_exit(proc: subprocess.Popen, timeout: float = 15.0) -> bool:
    """True when the spawned server exited with status 0 (graceful)."""
    try:
        return proc.wait(timeout=timeout) == 0
    except subprocess.TimeoutExpired:
        proc.kill()
        return False


# --------------------------------------------------------------------------- #
# oracle helpers
# --------------------------------------------------------------------------- #
def _uids(records: Sequence[Any]) -> set:
    return {r.uid for r in records}


def _oracle_uids(records: Sequence[Any], q: Any) -> set:
    return {r.uid for r in records if q.matches(r)}


def _within_bound(ios: int, bound: Optional[float]) -> bool:
    if bound is None:
        return True
    return ios <= BOUND_SLACK * bound + BOUND_SLACK_PAGES


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


class _Failures:
    """Thread-safe failure collector (first few messages kept verbatim)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.oracle: List[str] = []
        self.bound: List[str] = []
        self.errors: List[str] = []

    def add(self, kind: str, message: str) -> None:
        with self._lock:
            bucket = getattr(self, kind)
            if len(bucket) < 8:
                bucket.append(message)

    @property
    def oracle_ok(self) -> bool:
        return not self.oracle and not self.errors

    @property
    def bound_ok(self) -> bool:
        return not self.bound


def _fan_out(worker: Callable[[int], None], threads: int) -> float:
    """Run ``worker(thread_index)`` on N threads; the total wall seconds."""
    ts = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    start = time.perf_counter()
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    return time.perf_counter() - start




# --------------------------------------------------------------------------- #
# the matrix
# --------------------------------------------------------------------------- #
def run_matrix(
    host: str,
    port: int,
    *,
    n: int = 10_000,
    queries: int = 60,
    thread_counts: Sequence[int] = (1, 2, 4),
    write_ops: int = 12,
    seed: int = 5,
    mean_length: float = 20.0,
    think_ms: float = 5.0,
    shutdown: bool = False,
) -> Dict[str, Any]:
    """Run every concurrent scenario against a live server; the JSON payload.

    ``queries`` is per thread per read scenario, so heavier thread counts
    do proportionally more total work (throughput is comparable).

    The read-only scenarios use the standard **closed-loop** load model:
    each client thread issues a request, verifies the answer against the
    precomputed oracle, then spends ``think_ms`` of idle "think time"
    before the next request — the application-side processing a real
    client does between queries.  A single closed-loop client therefore
    leaves the server mostly idle, and the thread sweep measures what the
    serving subsystem exists to provide: filling that idle time with
    *other* sessions' requests.  (With ``think_ms=0`` every configuration
    collapses to the host's single-core Python throughput and thread
    counts measure nothing.)  Reported latency is the request round-trip
    only; ``ops_per_sec`` is the delivered request rate of all clients.

    With ``shutdown`` the driver's last act is a wire ``shutdown`` — the
    CI smoke gate uses that to assert graceful exit.
    """
    import random

    setup = ReproClient(host, port)
    base_local = random_intervals(n, seed=seed, mean_length=mean_length)
    setup.create(BASE, records=[])
    base = setup.bulk_load(BASE, base_local)  # authoritative (server-uid) copy
    scenarios: List[Dict[str, Any]] = []

    rnd = random.Random(seed + 1)
    points = [rnd.uniform(0, 1000) for _ in range(max(thread_counts) * queries)]
    windows = [(x, x + 5.0) for x in points]
    think_s = max(think_ms, 0.0) / 1e3

    # -- read-only scaling: stab + endpoint, per thread count ------------- #
    def read_scenario(name: str, make_query: Callable[[int], Any], threads: int) -> Dict[str, Any]:
        failures = _Failures()
        latencies: List[float] = []
        ios_total = [0]
        lock = threading.Lock()
        # the full oracle sweep happens once, outside the timed loop; each
        # response is still verified (by uid-set equality) per request
        expected = {
            i: _oracle_uids(base, make_query(i))
            for i in range(threads * queries)
        }

        def worker(tid: int) -> None:
            try:
                with ReproClient(host, port) as db:
                    handle = db.prepare(BASE, Stab(Param("x"))) if name.startswith("stab") else None
                    local_lat: List[float] = []
                    local_ios = 0
                    for i in range(queries):
                        j = tid * queries + i
                        q = make_query(j)
                        t0 = time.perf_counter()
                        if handle is not None:
                            res = handle.run(x=q.x)
                        else:
                            res = db.query(BASE, q)
                        local_lat.append(time.perf_counter() - t0)
                        local_ios += res.ios
                        if _uids(res.records) != expected[j]:
                            failures.add("oracle", f"{name}[{threads}t] {q!r} answer mismatch")
                        if not _within_bound(res.ios, res.bound):
                            failures.add(
                                "bound",
                                f"{name}[{threads}t] {q!r}: ios={res.ios} "
                                f"> {BOUND_SLACK} x {res.bound} + {BOUND_SLACK_PAGES}",
                            )
                        if think_s:
                            time.sleep(think_s)
                    with lock:
                        latencies.extend(local_lat)
                        ios_total[0] += local_ios
            except Exception as exc:  # noqa: BLE001 - collected, not raised
                failures.add("errors", f"{name}[{threads}t] thread {tid}: {exc!r}")

        wall = _fan_out(worker, threads)
        ops = threads * queries
        latencies.sort()
        return {
            "name": name,
            "threads": threads,
            "ops": ops,
            "think_ms": think_ms,
            "ops_per_sec": round(ops / wall, 1) if wall > 0 else float("inf"),
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "ios_per_query": round(ios_total[0] / max(ops, 1), 2),
            "oracle_ok": failures.oracle_ok,
            "bound_ok": failures.bound_ok,
            "failures": failures.oracle + failures.bound + failures.errors,
        }

    for threads in thread_counts:
        scenarios.append(read_scenario(
            "stab/read-only", lambda i: Stab(points[i]), threads))
    max_threads = max(thread_counts)
    scenarios.append(read_scenario(
        "endpoint/read-only",
        lambda i: EndpointRange("low", windows[i][0], windows[i][1]),
        max_threads,
    ))

    # -- mixed read/write: private write targets, shared reads ------------ #
    def mixed_scenario(threads: int) -> Dict[str, Any]:
        failures = _Failures()
        latencies: List[float] = []
        ops_done = [0]
        lock = threading.Lock()
        seeds = [seed + 100 + t for t in range(threads)]
        for t in range(threads):
            setup.create(f"rw{t}", records=[])
            setup.bulk_load(
                f"rw{t}",
                random_intervals(max(n // (2 * threads), 16), seed=seeds[t],
                                 mean_length=mean_length),
            )

        def worker(tid: int) -> None:
            name = f"rw{tid}"
            try:
                with ReproClient(host, port) as db:
                    # deterministic local model: everything this thread's
                    # collection holds (no other thread writes to it)
                    snapshot = db.query(name, EndpointRange("low", -1e9, 1e9))
                    model = {r.uid: r for r in snapshot.records}
                    handle = db.prepare(name, Stab(Param("x")))
                    fresh = random_intervals(
                        write_ops, seed=seeds[tid] + 7, mean_length=mean_length)
                    local: List[float] = []
                    # each server round-trip is its own latency sample;
                    # client-side oracle verification stays untimed
                    for i, iv in enumerate(fresh):
                        t0 = time.perf_counter()
                        stored = db.insert(name, iv)
                        local.append(time.perf_counter() - t0)
                        model[stored.uid] = stored
                        x = points[(tid * write_ops + i) % len(points)]
                        t0 = time.perf_counter()
                        res = handle.run(x=x)
                        local.append(time.perf_counter() - t0)
                        if _uids(res.records) != _oracle_uids(list(model.values()), Stab(x)):
                            failures.add("oracle", f"mixed[{threads}t] rw stab({x}) mismatch")
                        shared_q = Stab(points[(i * 13 + tid) % len(points)])
                        t0 = time.perf_counter()
                        shared_res = db.query(BASE, shared_q)
                        local.append(time.perf_counter() - t0)
                        if _uids(shared_res.records) != _oracle_uids(base, shared_q):
                            failures.add("oracle", f"mixed[{threads}t] base {shared_q!r} mismatch")
                        t0 = time.perf_counter()
                        removed = db.delete(name, stored)["removed"]
                        local.append(time.perf_counter() - t0)
                        if removed != 1:
                            failures.add("oracle", f"mixed[{threads}t] delete lost {stored!r}")
                        del model[stored.uid]
                    with lock:
                        latencies.extend(local)
                        ops_done[0] += 4 * len(fresh)
            except Exception as exc:  # noqa: BLE001
                failures.add("errors", f"mixed[{threads}t] thread {tid}: {exc!r}")

        wall = _fan_out(worker, threads)
        latencies.sort()
        return {
            "name": "mixed/insert-query-delete",
            "threads": threads,
            "ops": ops_done[0],
            "ops_per_sec": round(ops_done[0] / wall, 1) if wall > 0 else float("inf"),
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "oracle_ok": failures.oracle_ok,
            "bound_ok": failures.bound_ok,
            "failures": failures.oracle + failures.bound + failures.errors,
        }

    scenarios.append(mixed_scenario(max_threads))

    # -- shared-collection snapshot consistency --------------------------- #
    def shared_scenario(threads: int) -> Dict[str, Any]:
        failures = _Failures()
        setup.create(SHARED, records=[])
        shared_base = setup.bulk_load(
            SHARED, random_intervals(max(n // 4, 32), seed=seed + 50,
                                     mean_length=mean_length))
        base_set = _uids(shared_base)
        # transients are identified by *value* (a per-thread payload tag
        # precomputed before the storm), not by a uid registry: a concurrent
        # reader may legitimately see a record after the server committed it
        # but before the inserting thread could have registered the uid, so
        # any post-insert registry races into false "phantom" reports
        fresh_by_thread = {
            tid: [
                Interval(iv.low, iv.high, payload=f"transient-{tid}-{i}")
                for i, iv in enumerate(random_intervals(
                    write_ops, seed=seed + 300 + tid, mean_length=mean_length))
            ]
            for tid in range(threads)
        }
        transient_tags = {
            iv.payload for batch in fresh_by_thread.values() for iv in batch
        }

        def worker(tid: int) -> None:
            try:
                with ReproClient(host, port) as db:
                    for i, iv in enumerate(fresh_by_thread[tid]):
                        stored = db.insert(SHARED, iv)
                        q = Stab(points[(i * 11 + tid * 3) % len(points)])
                        res = db.query(SHARED, q)
                        answer = _uids(res.records)
                        expected_base = _oracle_uids(shared_base, q)
                        # snapshot consistency: all matching base records,
                        # plus only known transients that do match q
                        if not expected_base <= answer:
                            failures.add("oracle", f"shared {q!r} lost base records")
                        for rec in res.records:
                            if rec.uid in expected_base:
                                continue
                            if rec.payload not in transient_tags:
                                failures.add(
                                    "oracle", f"shared {q!r} phantom record {rec!r}")
                            elif not q.matches(rec):
                                failures.add(
                                    "oracle", f"shared {q!r} non-matching extra {rec!r}")
                        db.delete(SHARED, stored)
            except Exception as exc:  # noqa: BLE001
                failures.add("errors", f"shared thread {tid}: {exc!r}")

        wall = _fan_out(worker, threads)
        # after the dust settles: the shared collection is exactly its base
        final = setup.query(SHARED, EndpointRange("low", -1e9, 1e9))
        if _uids(final.records) != base_set:
            failures.add("oracle", "shared collection did not return to its base set")
        ops = threads * write_ops * 3
        return {
            "name": "shared/snapshot-consistency",
            "threads": threads,
            "ops": ops,
            "ops_per_sec": round(ops / wall, 1) if wall > 0 else float("inf"),
            "oracle_ok": failures.oracle_ok,
            "bound_ok": failures.bound_ok,
            "failures": failures.oracle + failures.bound + failures.errors,
        }

    scenarios.append(shared_scenario(max_threads))

    # -- summary ----------------------------------------------------------- #
    by_stab = {row["threads"]: row for row in scenarios
               if row["name"] == "stab/read-only"}
    lo, hi = min(by_stab), max(by_stab)
    scaling = (
        round(by_stab[hi]["ops_per_sec"] / by_stab[lo]["ops_per_sec"], 2)
        if by_stab[lo]["ops_per_sec"] else float("inf")
    )
    server_stats = setup.stats()
    payload = {
        "benchmark": "concurrency",
        "n": n,
        "queries_per_thread": queries,
        "thread_counts": list(thread_counts),
        "generated_by": "python -m benchmarks.bench_concurrency",
        "scenarios": scenarios,
        "summary": {
            "read_scaling": {
                "scenario": "stab/read-only",
                "threads": [lo, hi],
                "ops_per_sec": [by_stab[lo]["ops_per_sec"], by_stab[hi]["ops_per_sec"]],
                "speedup": scaling,
            },
            "oracle_ok": all(row["oracle_ok"] for row in scenarios),
            "bound_ok": all(row["bound_ok"] for row in scenarios),
            "server_sessions_served": len(server_stats["sessions"]),
            "server_engine": {
                k: server_stats["engine"][k]
                for k in ("block_size", "blocks", "reads", "writes")
            },
            # the uniform durability block every BENCH_*.json carries,
            # read off the already-fetched stats round-trip (a WAL-less
            # ephemeral server reports zeros)
            "wal": wal_bench_fragment_from_wire(
                server_stats.get("wal"), server_stats["engine"]
            ),
        },
    }
    if shutdown:
        payload["summary"]["shutdown_acknowledged"] = bool(
            setup.shutdown().get("stopping")
        )
    setup.close()
    return payload


# --------------------------------------------------------------------------- #
# the sharded legs (cluster scatter-gather)
# --------------------------------------------------------------------------- #
def run_sharded_legs(
    *,
    shard_counts: Sequence[int] = (1, 2, 4),
    clients: int = 16,
    write_ops: int = 30,
    base_records: int = 500,
    seed: int = 5,
    mean_length: float = 20.0,
    block_size: int = 16,
    commit_latency_ms: float = 6.0,
    pruning_shards: int = 4,
    pruning_queries: int = 40,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """The cluster benchmark legs: write scaling + range pruning.

    **Write scaling** — for each shard count S, a fresh *process-mode*
    range cluster over WAL-durable FileDisk shards (S shards = S physical
    commit pipelines: S write mutexes, S WALs syncing independently).
    ``clients`` closed-loop connections each own a private collection and
    loop insert → (periodic) verified stab read → (periodic) delete; the
    recorded ``writes_per_sec`` is the delivered write rate of all
    clients.  Every shard's WAL runs as a *simulated* synchronous log
    device (``commit_latency_ms`` per barrier, the same philosophy as
    ``SimulatedDisk`` counting block I/Os that RAM makes free): one shard
    serializes all commits behind one device round-trip per write, and
    sharding is the only thing that overlaps those round-trips — so the
    rate must rise monotonically with S.  That is the gate, and it holds
    even on a single-core runner because a device round-trip is waiting,
    not CPU.  Range partitioning (not hash) keeps the leg honest: the
    interleaved verified reads prune to one or two shards instead of
    broadcasting to all S, so the router's scatter executor stays out of
    the measured write path.  Every read is still oracle-checked against
    the client's local model and every per-request ``ios`` held to
    ``BOUND_SLACK`` (the router reports the summed per-shard bound).

    **Range pruning** — a range-strategy cluster and stab queries with
    bounded interval lengths: the candidate-low window is narrower than
    one slab, so every stab must reach at most 2 shards
    (``shards_contacted`` comes back on each routed response), while the
    answers stay oracle-exact.

    Returns ``(scenario_rows, summary_fragment)`` for the benchmark
    payload; each cluster is drained over the wire and must exit 0.
    """
    import random
    import shutil
    import tempfile

    rows: List[Dict[str, Any]] = []
    writes_per_sec: List[float] = []

    for shards in shard_counts:
        tmpdir = tempfile.mkdtemp(prefix=f"repro-shardbench-{shards}-")
        proc, host, port = spawn_cluster(
            shards=shards, strategy="range", block_size=block_size,
            directory=tmpdir, commit_latency_ms=commit_latency_ms,
        )
        failures = _Failures()
        writes_done = [0]
        lock = threading.Lock()
        try:
            with ReproClient(host, port) as setup:
                stored_base = {
                    tid: setup.bulk_load(
                        _created(setup, f"w{tid}"),
                        random_intervals(base_records, seed=seed + tid,
                                         mean_length=mean_length),
                    )
                    for tid in range(clients)
                }

            def worker(tid: int) -> None:
                name = f"w{tid}"
                try:
                    with ReproClient(host, port) as db:
                        model = {r.uid: r for r in stored_base[tid]}
                        rnd = random.Random(seed * 1000 + tid)
                        fresh = random_intervals(
                            write_ops, seed=seed + 500 + tid,
                            mean_length=mean_length)
                        local_writes = 0
                        for i, iv in enumerate(fresh):
                            stored = db.insert(name, iv)
                            model[stored.uid] = stored
                            local_writes += 1
                            # reads stay in the mix for the oracle/bound
                            # check, but sparse: even a pruned read costs
                            # a full round-trip and would otherwise bury
                            # the write-pipeline scaling being measured
                            if i % 8 == 0:
                                x = rnd.uniform(0, 1000)
                                res = db.query(name, Stab(x))
                                if _uids(res.records) != _oracle_uids(
                                        list(model.values()), Stab(x)):
                                    failures.add(
                                        "oracle",
                                        f"sharded[{len(rows)}] stab({x:.1f}) "
                                        f"mismatch on {name}")
                                if not _within_bound(res.ios, res.bound):
                                    failures.add(
                                        "bound",
                                        f"sharded stab: ios={res.ios} > "
                                        f"{BOUND_SLACK} x {res.bound} "
                                        f"+ {BOUND_SLACK_PAGES}")
                            if i % 4 == 3:
                                victim = model.pop(stored.uid)
                                db.delete(name, victim)
                                local_writes += 1
                        with lock:
                            writes_done[0] += local_writes
                except Exception as exc:  # noqa: BLE001 - collected
                    failures.add("errors", f"sharded client {tid}: {exc!r}")

            wall = _fan_out(worker, clients)
            with ReproClient(host, port) as closer:
                acked = bool(closer.shutdown().get("stopping"))
            exit_clean = wait_for_clean_exit(proc, timeout=60.0) and acked
        finally:
            if proc.poll() is None:
                proc.kill()
            shutil.rmtree(tmpdir, ignore_errors=True)
        rate = round(writes_done[0] / wall, 1) if wall > 0 else 0.0
        writes_per_sec.append(rate)
        rows.append({
            "name": "sharded/write-scaling",
            "shards": shards,
            "threads": clients,
            "ops": writes_done[0],
            "ops_per_sec": rate,
            "writes_per_sec": rate,
            "exit_clean": exit_clean,
            "oracle_ok": failures.oracle_ok,
            "bound_ok": failures.bound_ok,
            "failures": failures.oracle + failures.bound + failures.errors,
        })

    # -- range pruning: stab windows narrower than a slab ------------------ #
    rnd = random.Random(seed + 9)
    proc, host, port = spawn_cluster(
        shards=pruning_shards, strategy="range", block_size=block_size,
    )
    failures = _Failures()
    contacted: List[int] = []
    try:
        with ReproClient(host, port) as db:
            # bounded lengths: the candidate-low window of any stab stays
            # below one slab width (1000 / shards), so >= 2 contacted
            # shards would be a routing bug, not data bad luck
            slab = 1000.0 / pruning_shards
            records = [
                Interval(low, low + rnd.uniform(0.0, slab * 0.8), payload=i)
                for i, low in enumerate(
                    rnd.uniform(0, 1000) for _ in range(40 * pruning_shards))
            ]
            stored = db.bulk_load(_created(db, BASE), records)
            for _ in range(pruning_queries):
                q = Stab(rnd.uniform(0, 1000))
                res = db.query(BASE, q)
                contacted.append(int(res.raw.get("shards_contacted", 0)))
                if _uids(res.records) != _oracle_uids(stored, q):
                    failures.add("oracle", f"pruning {q!r} mismatch")
                if not _within_bound(res.ios, res.bound):
                    failures.add("bound", f"pruning {q!r} ios={res.ios}")
            acked = bool(db.shutdown().get("stopping"))
        exit_clean = wait_for_clean_exit(proc, timeout=60.0) and acked
    finally:
        if proc.poll() is None:
            proc.kill()
    rows.append({
        "name": "sharded/range-pruning",
        "shards": pruning_shards,
        "threads": 1,
        "ops": pruning_queries,
        "ops_per_sec": 0.0,
        "max_shards_contacted": max(contacted) if contacted else 0,
        "avg_shards_contacted": round(
            sum(contacted) / len(contacted), 2) if contacted else 0.0,
        "exit_clean": exit_clean,
        "oracle_ok": failures.oracle_ok,
        "bound_ok": failures.bound_ok,
        "failures": failures.oracle + failures.bound + failures.errors,
    })

    summary = {
        "clients": clients,
        "shard_counts": list(shard_counts),
        "commit_latency_ms": commit_latency_ms,
        "writes_per_sec": writes_per_sec,
        "write_scaling_monotonic": all(
            b > a for a, b in zip(writes_per_sec, writes_per_sec[1:])
        ),
        "pruning": {
            "shards": pruning_shards,
            "max_shards_contacted": rows[-1]["max_shards_contacted"],
            "avg_shards_contacted": rows[-1]["avg_shards_contacted"],
        },
        "exit_clean": all(row["exit_clean"] for row in rows),
        "oracle_ok": all(row["oracle_ok"] for row in rows),
        "bound_ok": all(row["bound_ok"] for row in rows),
    }
    return rows, summary


def _created(db: ReproClient, name: str) -> str:
    """Create an empty collection, return its name (setup sugar)."""
    db.create(name, records=[])
    return name


# --------------------------------------------------------------------------- #
# reporting + the CI gate
# --------------------------------------------------------------------------- #
def report(payload: Dict[str, Any], out: Any = None) -> None:
    """Print the scenario table; ``out`` additionally writes the JSON."""
    for row in payload["scenarios"]:
        extras = ""
        if "p50_ms" in row:
            extras = f" p50={row['p50_ms']:7.2f}ms p99={row['p99_ms']:7.2f}ms"
        if "ios_per_query" in row:
            extras += f" ios/q={row['ios_per_query']:6.2f}"
        if "max_shards_contacted" in row:
            extras += (f" contacted<={row['max_shards_contacted']} "
                       f"(avg {row['avg_shards_contacted']})")
        label = row["name"]
        if "shards" in row:
            label += f" @{row['shards']}sh"
        flags = "ok" if row["oracle_ok"] and row["bound_ok"] else "FAIL"
        print(f"  {label:28s} x{row['threads']}  "
              f"ops/s={row['ops_per_sec']:9.1f}{extras}  [{flags}]")
        for failure in row.get("failures", []):
            print(f"      ! {failure}")
    summary = payload["summary"]
    sharded = summary.get("sharded")
    if sharded:
        print(f"  sharded writes/s {sharded['shard_counts']} shards x"
              f"{sharded['clients']} clients: {sharded['writes_per_sec']} "
              f"monotonic={sharded['write_scaling_monotonic']} "
              f"pruning<= {sharded['pruning']['max_shards_contacted']} shards "
              f"drain={'clean' if sharded['exit_clean'] else 'UNCLEAN'}")
    scale = summary["read_scaling"]
    print(f"  read scaling {scale['threads'][0]} -> {scale['threads'][1]} threads: "
          f"{scale['speedup']}x   oracle={summary['oracle_ok']} "
          f"bounds={summary['bound_ok']}")
    if out:
        import json

        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2)
            print(file=fh)
        print(f"  wrote {out}")


def gate_failures(
    payload: Dict[str, Any], *, require_scaling: Optional[float] = None
) -> List[str]:
    """The concurrency gate: oracle-equivalence always; scaling on demand.

    Oracle equivalence and bound compliance are exact and must hold at any
    size (the CI smoke gate).  ``require_scaling`` additionally enforces a
    minimum read-only speedup between the smallest and largest thread
    count — used when regenerating the committed BENCH file, not in CI
    smoke runs, where two-thread wall-clock on a loaded runner is noise.
    """
    failures = []
    if not payload["summary"]["oracle_ok"]:
        for row in payload["scenarios"]:
            for f in row.get("failures", []):
                failures.append(f"oracle: {f}")
        if not failures:
            failures.append("oracle: unknown mismatch")
    if not payload["summary"]["bound_ok"]:
        failures.append("bound: some request exceeded BOUND_SLACK x bound")
    if payload["summary"].get("shutdown_acknowledged") is False:
        failures.append("shutdown: server did not acknowledge the stop request")
    if payload["summary"].get("server_exit_clean") is False:
        failures.append("shutdown: spawned server exited uncleanly")
    if require_scaling is not None:
        speedup = payload["summary"]["read_scaling"]["speedup"]
        if speedup < require_scaling:
            failures.append(
                f"scaling: read-only speedup {speedup}x < required "
                f"{require_scaling}x"
            )
    sharded = payload["summary"].get("sharded")
    if sharded:
        if not sharded.get("oracle_ok", True):
            failures.append("sharded: some routed answer missed its oracle")
        if not sharded.get("bound_ok", True):
            failures.append("sharded: some routed request exceeded its bound")
        if not sharded.get("write_scaling_monotonic", True):
            failures.append(
                "sharded: write throughput did not rise monotonically with "
                f"shard count ({sharded.get('shard_counts')} -> "
                f"{sharded.get('writes_per_sec')} writes/s)"
            )
        pruning = sharded.get("pruning")
        if pruning and pruning.get("max_shards_contacted", 0) > 2:
            failures.append(
                "sharded: a range-strategy stab contacted "
                f"{pruning['max_shards_contacted']} shards (> 2: pruning "
                "is not pruning)"
            )
        if sharded.get("exit_clean") is False:
            failures.append("sharded: a cluster did not drain cleanly")
    return failures


def run_gate(payload: Dict[str, Any], *, require_scaling: Optional[float] = None) -> int:
    failures = gate_failures(payload, require_scaling=require_scaling)
    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    return 1 if failures else 0
