"""External B+-tree.

The paper uses the B+-tree as its point of reference (Section 1.1): space
``O(n/B)`` pages, range query ``O(log_B n + t/B)`` I/Os and update
``O(log_B n)`` I/Os.  Every class-indexing structure in the paper "indexes a
collection" by building a B+-tree over it, so this subpackage is a core
substrate of the reproduction.
"""

from repro.btree.bplustree import BPlusTree

__all__ = ["BPlusTree"]
