"""An external-memory B+-tree with I/O accounting.

Design
------
* Leaves hold up to ``B`` ``(key, value)`` pairs, sorted by key, and are
  chained left-to-right, exactly as the paper describes B+-trees
  (Section 1.4: "keep data only in their leaves and chain the leaves from
  left to right").
* Internal nodes hold up to ``B`` routing entries ``(max_key_of_child,
  child_block_id)``.
* Duplicate keys are allowed (several objects may share an attribute
  value); a range search reports every matching pair.
* All block accesses go through the owning :class:`SimulatedDisk` (or
  :class:`BufferManager`), so every operation has an exact I/O cost.

The structure supports point search, range search, insertion, deletion and
bulk loading from sorted data.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.io.disk import Block, BlockId

Pair = Tuple[Any, Any]


class _HybridBulkLoad:
    """Descriptor giving ``bulk_load`` both calling conventions.

    ``BPlusTree.bulk_load(disk, pairs)`` — the historical constructor —
    builds a fresh tree; ``tree.bulk_load(pairs)`` — the
    :class:`~repro.engine.protocols.MutableIndex` surface — merges a batch
    into an existing tree by repacking it bottom-up.
    """

    def __get__(self, obj, objtype=None):
        if obj is None:
            return objtype._bulk_build
        return obj._bulk_merge


class BPlusTree:
    """A B+-tree storing ``(key, value)`` pairs on a simulated disk.

    Parameters
    ----------
    disk:
        A :class:`~repro.io.disk.SimulatedDisk` or
        :class:`~repro.io.buffer.BufferManager`.
    name:
        Optional label used in ``repr`` and debugging output.
    """

    def __init__(self, disk, name: str = "bptree") -> None:
        self.disk = disk
        self.name = name
        self.branching = disk.block_size
        if self.branching < 2:
            raise ValueError("block size must be at least 2 for a B+-tree")
        root = self.disk.allocate(records=[], header={"leaf": True, "next": None})
        self.root_id: BlockId = root.block_id
        self.height = 1
        self.size = 0

    #: capability flags of the :class:`~repro.engine.protocols.MutableIndex`
    #: tier: deletion and bottom-up bulk loading are both native here
    supports_deletes = True
    supports_bulk_load = True

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def _bulk_build(cls, disk, pairs: Iterable[Pair], name: str = "bptree") -> "BPlusTree":
        """Build a tree from (not necessarily sorted) ``(key, value)`` pairs.

        Bulk loading packs leaves completely full, which gives the
        ``O(n/B)`` space bound with a small constant, and costs
        ``O(n/B)`` I/Os after sorting.
        """
        tree = cls(disk, name=name)
        data = sorted(pairs, key=lambda kv: kv[0])
        if not data:
            return tree
        # free the empty root created by __init__
        tree.disk.free(tree.root_id)
        tree._load_sorted(data)
        return tree

    def _load_sorted(self, data: List[Pair]) -> None:
        """Pack already-sorted pairs into full leaves, bottom-up (``O(n/B)`` writes)."""
        disk = self.disk
        B = self.branching
        if not data:
            root = disk.allocate(records=[], header={"leaf": True, "next": None})
            self.root_id = root.block_id
            self.height = 1
            self.size = 0
            return
        leaf_ids: List[BlockId] = []
        leaf_max_keys: List[Any] = []
        for start in range(0, len(data), B):
            chunk = data[start : start + B]
            block = disk.allocate(records=list(chunk), header={"leaf": True, "next": None})
            leaf_ids.append(block.block_id)
            leaf_max_keys.append(chunk[-1][0])
        # chain leaves
        for i in range(len(leaf_ids) - 1):
            block = disk.read(leaf_ids[i])
            block.header["next"] = leaf_ids[i + 1]
            disk.write(block)

        level_ids = leaf_ids
        level_keys = leaf_max_keys
        height = 1
        while len(level_ids) > 1:
            next_ids: List[BlockId] = []
            next_keys: List[Any] = []
            for start in range(0, len(level_ids), B):
                child_ids = level_ids[start : start + B]
                child_keys = level_keys[start : start + B]
                records = list(zip(child_keys, child_ids))
                block = disk.allocate(records=records, header={"leaf": False})
                next_ids.append(block.block_id)
                next_keys.append(child_keys[-1])
            level_ids = next_ids
            level_keys = next_keys
            height += 1

        self.root_id = level_ids[0]
        self.height = height
        self.size = len(data)

    def _bulk_merge(self, pairs: Iterable[Pair]) -> int:
        """Merge a batch into this tree by rebuilding it bottom-up.

        One ``O(n/B)`` leaf scan streams the resident pairs, a single merge
        with the sorted batch produces the new leaf sequence, and the tree
        is repacked with full leaves — ``O((n + m)/B + m log m)`` work and
        ``O((n + m)/B)`` I/Os for a batch of ``m``, versus
        ``O(m log_B n)`` I/Os for ``m`` one-at-a-time inserts.
        """
        from heapq import merge

        new = sorted(pairs, key=lambda kv: kv[0])
        if not new:
            return 0
        data = list(merge(self.iter_pairs(), new, key=lambda kv: kv[0]))
        self.destroy()
        self._load_sorted(data)
        return len(new)

    bulk_load = _HybridBulkLoad()

    def destroy(self) -> None:
        """Free every block of the tree (rebuilds and ``drop_index`` use this)."""
        if self.root_id is None:
            return
        stack = [self.root_id]
        while stack:
            bid = stack.pop()
            block = self.disk.peek(bid)
            if not block.header["leaf"]:
                stack.extend(child for _, child in block.records)
            self.disk.free(bid)
        self.root_id = None
        self.height = 0
        self.size = 0

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #
    def _find_leaf(self, key: Any) -> Tuple[Block, List[Tuple[BlockId, int]]]:
        """Descend to the leaf that should contain ``key``.

        Returns the leaf block and the path of ``(block_id, child_index)``
        taken through internal nodes (used by insertion for splits).
        """
        path: List[Tuple[BlockId, int]] = []
        block = self.disk.read(self.root_id)
        while not block.header["leaf"]:
            idx = self._route(block, key)
            path.append((block.block_id, idx))
            child_id = block.records[idx][1]
            block = self.disk.read(child_id)
        return block, path

    @staticmethod
    def _route(block: Block, key: Any) -> int:
        """Index of the child an internal node routes ``key`` to."""
        records = block.records
        lo, hi = 0, len(records) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if records[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def search(self, key: Any) -> List[Any]:
        """Return all values stored under ``key`` (``O(log_B n + t/B)`` I/Os)."""
        return [v for _, v in self.range_search(key, key)]

    def contains(self, key: Any) -> bool:
        """Whether any pair with ``key`` exists."""
        leaf, _ = self._find_leaf(key)
        if any(k == key for k, _ in leaf.records):
            return True
        # duplicates may spill into following leaves
        next_id = leaf.header["next"]
        while next_id is not None:
            nxt = self.disk.read(next_id)
            if nxt.records and nxt.records[0][0] == key:
                return True
            break
        return False

    def range_search(
        self,
        lo: Any,
        hi: Any,
        *,
        min_inclusive: bool = True,
        max_inclusive: bool = True,
    ) -> List[Pair]:
        """All ``(key, value)`` pairs with key in the given range.

        By default the range is the closed interval ``[lo, hi]``;
        ``min_inclusive=False`` / ``max_inclusive=False`` open the
        corresponding endpoint, so callers no longer need a post-filter to
        discard boundary records.

        Cost: ``O(log_B n + t/B)`` I/Os — the paper's reference bound.
        """
        return list(
            self.iter_range(lo, hi, min_inclusive=min_inclusive, max_inclusive=max_inclusive)
        )

    def iter_range(
        self,
        lo: Any,
        hi: Any,
        *,
        min_inclusive: bool = True,
        max_inclusive: bool = True,
    ) -> Iterator[Pair]:
        """Stream ``(key, value)`` pairs in key order, reading leaves lazily.

        The generator descends to the first qualifying leaf on the first
        ``next()`` and then reads one chained leaf at a time, so consumers
        that stop early (``itertools.islice``, ``QueryResult.first``) pay
        only for the blocks they actually touched.
        """
        if lo > hi or (lo == hi and not (min_inclusive and max_inclusive)):
            return
        leaf, _ = self._find_leaf(lo)
        while True:
            for k, v in leaf.records:
                if k > hi or (k == hi and not max_inclusive):
                    return
                if k > lo or (k == lo and min_inclusive):
                    yield (k, v)
            next_id = leaf.header["next"]
            if next_id is None:
                return
            leaf = self.disk.read(next_id)

    def iter_pairs(self) -> Iterator[Pair]:
        """Iterate over every pair in key order (reads every leaf)."""
        block = self.disk.read(self.root_id)
        while not block.header["leaf"]:
            block = self.disk.read(block.records[0][1])
        while True:
            for pair in block.records:
                yield tuple(pair)
            next_id = block.header["next"]
            if next_id is None:
                return
            block = self.disk.read(next_id)

    def min_key(self) -> Optional[Any]:
        """Smallest key in the tree, or ``None`` when empty."""
        if self.size == 0:
            return None
        block = self.disk.read(self.root_id)
        while not block.header["leaf"]:
            block = self.disk.read(block.records[0][1])
        return block.records[0][0] if block.records else None

    def max_key(self) -> Optional[Any]:
        """Largest key in the tree, or ``None`` when empty."""
        if self.size == 0:
            return None
        block = self.disk.read(self.root_id)
        while not block.header["leaf"]:
            block = self.disk.read(block.records[-1][1])
        return block.records[-1][0] if block.records else None

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert(self, key: Any, value: Any) -> None:
        """Insert a pair (``O(log_B n)`` I/Os amortised over splits)."""
        leaf, path = self._find_leaf(key)
        self._insert_into_leaf(leaf, key, value)
        self.size += 1
        if len(leaf.records) <= leaf.capacity:
            self.disk.write(leaf)
            return
        self._split(leaf, path)

    @staticmethod
    def _insert_into_leaf(leaf: Block, key: Any, value: Any) -> None:
        records = leaf.records
        lo, hi = 0, len(records)
        while lo < hi:
            mid = (lo + hi) // 2
            if records[mid][0] <= key:
                lo = mid + 1
            else:
                hi = mid
        records.insert(lo, (key, value))

    def _split(self, block: Block, path: List[Tuple[BlockId, int]]) -> None:
        """Split an overfull node and propagate upward."""
        while True:
            mid = len(block.records) // 2
            left_records = block.records[:mid]
            right_records = block.records[mid:]
            is_leaf = block.header["leaf"]

            if is_leaf:
                right = self.disk.allocate(
                    records=right_records,
                    header={"leaf": True, "next": block.header["next"]},
                )
                block.records = left_records
                block.header["next"] = right.block_id
            else:
                right = self.disk.allocate(records=right_records, header={"leaf": False})
                block.records = left_records
            self.disk.write(block)

            left_max = left_records[-1][0]
            right_max = right_records[-1][0]

            if not path:
                # split the root: allocate a new root above
                new_root = self.disk.allocate(
                    records=[(left_max, block.block_id), (right_max, right.block_id)],
                    header={"leaf": False},
                )
                self.root_id = new_root.block_id
                self.height += 1
                return

            parent_id, child_idx = path.pop()
            parent = self.disk.read(parent_id)
            # the existing entry pointed at `block`; refresh its key and add the right sibling
            parent.records[child_idx] = (left_max, block.block_id)
            parent.records.insert(child_idx + 1, (right_max, right.block_id))
            if len(parent.records) <= parent.capacity:
                self.disk.write(parent)
                return
            block = parent  # keep splitting upward

    # ------------------------------------------------------------------ #
    # uniform Index surface (see repro.engine.protocols.Index)
    # ------------------------------------------------------------------ #
    def query(self, q: Any) -> "Any":
        """Answer an engine query descriptor with a lazy ``QueryResult``.

        * :class:`~repro.engine.queries.Range` -> ``(key, value)`` pairs in
          key order, honouring per-bound inclusivity;
        * :class:`~repro.engine.queries.Stab` -> values stored under the
          exact key.
        """
        from repro.analysis.complexity import btree_query_bound
        from repro.engine.queries import Range, Stab
        from repro.engine.result import QueryResult

        n, b = max(self.size, 2), self.branching
        if isinstance(q, Range):
            return QueryResult(
                lambda: self.iter_range(
                    q.low, q.high, min_inclusive=q.min_inclusive, max_inclusive=q.max_inclusive
                ),
                disk=self.disk,
                bound=lambda t: btree_query_bound(n, b, t),
                label=f"{self.name}:range",
            )
        if isinstance(q, Stab):
            return QueryResult(
                lambda: (v for _, v in self.iter_range(q.x, q.x)),
                disk=self.disk,
                bound=lambda t: btree_query_bound(n, b, t),
                label=f"{self.name}:key",
            )
        raise TypeError(f"BPlusTree cannot answer {type(q).__name__} queries")

    def supports(self, q: Any) -> bool:
        """Exact-key (:class:`Stab`) and key-range (:class:`Range`) shapes."""
        from repro.engine.queries import Range, Stab

        return isinstance(q, (Stab, Range))

    def cost(self, q: Any) -> "Any":
        """Section 1.1: ``O(log_B n + t/B)`` I/Os per search."""
        from repro.analysis.complexity import btree_query_bound
        from repro.engine.protocols import Bound

        n, b = max(self.size, 2), self.branching
        return Bound.of("log_B n + t/B", lambda t: btree_query_bound(n, b, t))

    def io_stats(self):
        """Live I/O counters of the backing store."""
        return self.disk.stats

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def block_count(self) -> int:
        """Number of blocks reachable from the root (the space bound)."""
        count = 0
        stack = [self.root_id]
        while stack:
            block = self.disk.peek(stack.pop())
            count += 1
            if not block.header["leaf"]:
                stack.extend(child for _, child in block.records)
        return count

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BPlusTree(name={self.name!r}, n={self.size}, height={self.height})"


# --------------------------------------------------------------------------- #
# deletion implemented as a module-level patch to keep the class body readable
# --------------------------------------------------------------------------- #
_MISSING = object()


def _delete(
    self: BPlusTree, key: Any, value: Any = _MISSING, *, match: Any = None
) -> bool:
    """Delete one pair with ``key`` (and ``value`` when given).

    ``match`` (a ``value -> bool`` predicate) replaces the ``v == value``
    test when given — the interval manager passes a uid comparison so that
    deleting one of several value-identical records removes exactly the
    record asked for, not an equal twin.

    Returns ``True`` when a pair was removed.  Underflow is handled lazily:
    empty leaves stay in place (their parent entry remains valid because the
    paper's structures never rely on B+-tree minimum-occupancy for their
    bounds, and lazy deletion keeps the space bound within a constant
    factor).  This matches common practice for B+-trees used as secondary
    indexes.
    """
    leaf, _ = self._find_leaf(key)
    while True:
        for i, (k, v) in enumerate(leaf.records):
            if k == key and (
                match(v) if match is not None else (value is _MISSING or v == value)
            ):
                del leaf.records[i]
                self.disk.write(leaf)
                self.size -= 1
                return True
            if k > key:
                return False
        next_id = leaf.header["next"]
        if next_id is None:
            return False
        leaf = self.disk.read(next_id)
        if leaf.records and leaf.records[0][0] > key:
            return False


BPlusTree.delete = _delete  # type: ignore[method-assign]
