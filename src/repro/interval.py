"""The interval record type shared by every interval-management structure.

Section 2.1 reduces indexing of convex constraint tuples to *dynamic
interval management*: each generalized tuple projects onto the indexed
attribute as one closed interval ``[low, high]``, which becomes that
tuple's *generalized key*.  :class:`Interval` is that key, optionally
carrying a payload (the tuple, the object identifier, ...).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: monotone source of record uids; every constructed interval gets a fresh one
_INTERVAL_UIDS = itertools.count()


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[low, high]`` with an optional payload.

    The ordering (by ``low`` then ``high``) is the one used by the B+-tree
    component of the interval manager; the payload does not participate in
    comparisons.

    Every interval carries a ``uid``: a process-unique record identity that
    survives (de)serialization (it pickles as a normal field).  The query
    planner's union plans deduplicate by it, so the *same* stored record
    reached through two physical indexes is reported once while two
    value-identical records stay two records.
    """

    low: Any
    high: Any
    payload: Any = field(default=None, compare=False)
    uid: int = field(
        default_factory=lambda: next(_INTERVAL_UIDS), compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"interval endpoints out of order: [{self.low}, {self.high}]")

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #
    def contains(self, x: Any) -> bool:
        """Whether the point ``x`` stabs this interval."""
        return self.low <= x <= self.high

    def intersects(self, other: "Interval") -> bool:
        """Whether this interval shares at least one point with ``other``."""
        return self.low <= other.high and other.low <= self.high

    def intersects_range(self, low: Any, high: Any) -> bool:
        """Whether this interval shares at least one point with ``[low, high]``."""
        return self.low <= high and low <= self.high

    @property
    def length(self) -> Any:
        return self.high - self.low

    def as_point(self) -> tuple:
        """The point ``(low, high)`` used by the stabbing-to-corner reduction.

        Mapping an interval ``[y1, y2]`` to the planar point ``(y1, y2)``
        places it on or above the line ``y = x``; a stabbing query at ``q``
        becomes the diagonal-corner query anchored at ``(q, q)``
        (Proposition 2.2, Fig. 3).
        """
        return (self.low, self.high)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.payload is None:
            return f"[{self.low}, {self.high}]"
        return f"[{self.low}, {self.high}]@{self.payload!r}"


def intervals_intersecting(intervals, low: Any, high: Any) -> list:
    """Brute-force reference: all intervals intersecting ``[low, high]``."""
    return [iv for iv in intervals if iv.intersects_range(low, high)]


def intervals_stabbed(intervals, x: Any) -> list:
    """Brute-force reference: all intervals containing the point ``x``."""
    return [iv for iv in intervals if iv.contains(x)]
