"""The metrics registry: named counters, gauges, fixed-bucket histograms.

Unlike tracing — opt-in, request-shaped — metrics are **always on**: a
handful of lock-guarded integer adds per request, cheap enough to leave
running in production and exactly what the ``metrics`` wire command and
``repro top`` export.  The registry is process-global (:data:`REGISTRY`)
so the engine, the WAL, the planner and the server all write into one
namespace without threading a handle through every constructor.

Instruments
-----------
* :class:`Counter` — monotonically increasing (``ops``, cache hits).
* :class:`Gauge` — a point-in-time value (epoch-pin age, live sessions).
* :class:`Histogram` — fixed exponential buckets with p50/p95/p99
  estimated by linear interpolation inside the winning bucket.  Fixed
  buckets keep ``observe`` O(#buckets) with zero allocation, which is
  what lets latency observation sit on the request path.

Every mutation holds the instrument's lock — the concurrency linter's
``unlocked-shared-mutation`` rule applies here as everywhere — so the
8-thread hammer test can assert counters are *exact*, not approximate.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

#: default histogram buckets (milliseconds), exponential 0.01ms .. ~10s
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically-increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``buckets`` are the inclusive upper bounds of each bin; observations
    above the last bound land in an overflow bin whose "upper bound" for
    interpolation is the largest value actually observed.
    """

    __slots__ = ("name", "buckets", "_lock", "_counts", "_count", "_sum", "_max")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets) or not self.buckets:
            raise ValueError(f"histogram {name!r} needs sorted, non-empty buckets")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +1: overflow bin
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, fraction: float) -> float:
        """Estimate the ``fraction`` quantile (0 < fraction <= 1)."""
        with self._lock:
            return self._percentile_locked(fraction)

    def _percentile_locked(self, fraction: float) -> float:
        if self._count == 0:
            return 0.0
        rank = fraction * self._count
        seen = 0.0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            lower = self.buckets[index - 1] if index > 0 else 0.0
            upper = self.buckets[index] if index < len(self.buckets) else self._max
            if seen + bucket_count >= rank:
                within = max(rank - seen, 0.0) / bucket_count
                return lower + (upper - lower) * within
            seen += bucket_count
        return self._max

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self._count,
                "sum": round(self._sum, 6),
                "avg": round(self._sum / self._count, 6) if self._count else 0.0,
                "max": round(self._max, 6),
                "p50": round(self._percentile_locked(0.50), 6),
                "p95": round(self._percentile_locked(0.95), 6),
                "p99": round(self._percentile_locked(0.99), 6),
            }


class MetricsRegistry:
    """A thread-safe namespace of instruments, created on first touch."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # instrument access (get-or-create)
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_LATENCY_BUCKETS_MS
                )
        return instrument

    # ------------------------------------------------------------------ #
    # export / reset
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """Plain data for the wire: counters, gauges, histogram summaries."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].as_dict() for name in sorted(histograms)
            },
        }

    def counter_values(self, prefix: str = "") -> Dict[str, int]:
        """Counter values whose names start with ``prefix`` (sorted)."""
        with self._lock:
            names: List[str] = [
                name for name in self._counters if name.startswith(prefix)
            ]
            return {name: self._counters[name].value for name in sorted(names)}

    def reset(self) -> None:
        """Drop every instrument (tests and the trace CLI start clean)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: the process-wide registry every subsystem records into
REGISTRY = MetricsRegistry()
