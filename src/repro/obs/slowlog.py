"""The slow-query log: capture requests that blow a latency threshold.

When a traced request finishes slower than the configured threshold, the
session layer hands its root span (plus the executed plan's description)
to :class:`SlowQueryLog`.  Entries are plain dicts — the same shape as
``Span.as_dict()`` — kept in a bounded in-memory ring and, optionally,
appended as JSON lines to a file so a long-running server leaves a
post-mortem artifact.

The log is threshold-gated *and* tracing-gated: with tracing disabled
the session layer never builds a span tree, so there is nothing to
record and the hot path pays nothing.  ``threshold_ms=None`` (the
default) disables recording even when tracing is on.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.tracer import Span

__all__ = ["SlowQueryLog", "SLOWLOG"]


class SlowQueryLog:
    """A bounded ring of slow-request records with an optional file sink."""

    RING_CAPACITY = 128

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._threshold_ms: Optional[float] = None
        self._path: Optional[str] = None
        self._ring: List[Dict[str, Any]] = []
        self.recorded = 0

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def configure(
        self, *, threshold_ms: Optional[float], path: Optional[str] = None
    ) -> None:
        """Set the latency threshold (None disables) and optional sink file."""
        with self._lock:
            self._threshold_ms = threshold_ms
            self._path = path

    @property
    def threshold_ms(self) -> Optional[float]:
        with self._lock:
            return self._threshold_ms

    def enabled(self) -> bool:
        return self.threshold_ms is not None

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def consider(self, root: Span, *, plan: Optional[str] = None) -> bool:
        """Record ``root`` if it crossed the threshold; report whether it did."""
        with self._lock:
            threshold = self._threshold_ms
            path = self._path
        if threshold is None or root.wall_ms < threshold:
            return False
        entry: Dict[str, Any] = {
            "ts": time.time(),
            "wall_ms": round(root.wall_ms, 4),
            "threshold_ms": threshold,
            "plan": plan,
            "trace": root.as_dict(),
        }
        with self._lock:
            self.recorded += 1
            self._ring.append(entry)
            if len(self._ring) > self.RING_CAPACITY:
                del self._ring[: len(self._ring) - self.RING_CAPACITY]
        if path is not None:
            line = json.dumps(entry, sort_keys=True)
            with self._lock:
                with open(path, "a", encoding="utf-8") as handle:
                    print(line, file=handle)
        return True

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def recent(self, limit: int = 16) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(entry) for entry in self._ring[-limit:]]

    def stats_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold_ms": self._threshold_ms,
                "recorded": self.recorded,
                "ring_depth": len(self._ring),
                "path": self._path,
            }

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
            self.recorded = 0


#: the process-wide slow-query log the session layer feeds
SLOWLOG = SlowQueryLog()
