"""Structured tracing: nestable spans over the request lifecycle.

A :class:`Span` is one bracketed scope of work — a planner lookup, a plan
execution, a WAL append, one shard's leg of a scatter — carrying a name,
free-form attributes, wall time, and (when the site hands over the
engine's :class:`~repro.io.counters.IOStats`) the exact I/O delta of the
scope, measured through the same per-thread ``attributed()`` sink
machinery that powers per-session accounting.  Because sinks nest, a
parent span's I/O count always covers its children's: the span tree's
I/Os *compose*, which is what lets ``repro trace`` assert that the
summed child I/Os equal the request's total and that the root's
``actual - bound`` residual matches the planner's ``BOUND_SLACK`` check.

Cost model — the tracer must be **near-zero when disabled** because it
brackets the hottest paths (the commit kernel, the planner):

* Disabled (the default): every instrumented site costs one module-global
  flag test plus one shared no-op context manager — no allocation, no
  lock, no clock read.  This mirrors the ``lockdep.ACTIVE`` pattern the
  runtime witness uses.
* Enabled: each span costs two clock reads, one small object, and (with
  ``stats``) one sink registration.  Spans are created per *request
  phase*, never per record, so even enabled tracing stays out of the
  per-record streaming loops.

Thread safety: the span stack is thread-local; cross-thread children
(the router's scatter workers) attach to an explicit ``parent=`` handed
across the thread boundary.  Span exit removes the span from the stack
it was pushed onto *by identity*, so a generator abandoned mid-stream
(``Limit`` cutting a residual scan short) closes its span late without
corrupting the nesting of the spans around it.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.io.counters import IOStats

__all__ = [
    "ACTIVE",
    "NullSpan",
    "Span",
    "Tracer",
    "TRACER",
    "current_span",
    "disable",
    "enable",
    "is_enabled",
    "render_span_tree",
    "span",
]

#: module-global fast-path flag: instrumented sites test this (or call
#: :func:`span`, which tests it first) before touching any tracer state
ACTIVE = False

#: process-wide bypass for overhead measurement: when set, :func:`span`
#: returns the shared no-op before even reading ``ACTIVE`` — the closest
#: measurable stand-in for "the instrumentation was never added"
BYPASS = False


class NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None

    @property
    def ios(self) -> int:
        return 0


_NULL = NullSpan()


class Span:
    """One live traced scope (use as a context manager)."""

    __slots__ = (
        "name", "attrs", "parent", "children", "wall_ms", "io",
        "_t0", "_stack", "_stats", "_sink_cm", "_tid", "_closed",
    )

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        parent: Optional["Span"],
        stats: Optional[IOStats],
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.children: List["Span"] = []
        self.wall_ms: float = 0.0
        #: the scope's I/O delta (an IOStats sink) — zeros without ``stats``
        self.io = IOStats()
        self._t0 = 0.0
        self._stack: Optional[List["Span"]] = None
        self._stats = stats
        self._sink_cm: Any = None
        self._tid = threading.get_ident()
        self._closed = False

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Span":
        if self._stats is not None:
            self._sink_cm = self._stats.attributed(self.io)
            self._sink_cm.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._closed:
            return
        self._closed = True
        self.wall_ms = (time.perf_counter() - self._t0) * 1e3
        # sink registration is thread-local: only unregister from the
        # thread that registered (a GC'd abandoned generator may close a
        # span from another thread; its sink entry dies with the request
        # thread's scope anyway)
        if self._sink_cm is not None and threading.get_ident() == self._tid:
            self._sink_cm.__exit__(None, None, None)
        self._sink_cm = None
        stack = self._stack
        if stack is not None:
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is self:
                    del stack[i]
                    break
        self._stack = None
        TRACER._finish(self)

    # ------------------------------------------------------------------ #
    def annotate(self, **attrs: Any) -> None:
        """Attach/overwrite attributes after the fact (bounds, residuals)."""
        self.attrs.update(attrs)

    @property
    def ios(self) -> int:
        return self.io.total

    def as_dict(self) -> Dict[str, Any]:
        """The span subtree as plain data (trace artifacts, slow-query log)."""
        return {
            "name": self.name,
            "wall_ms": round(self.wall_ms, 4),
            "ios": self.io.total,
            "io": self.io.as_dict(),
            "attrs": dict(self.attrs),
            "children": [child.as_dict() for child in self.children],
        }


class Tracer:
    """The process tracer: thread-local span stacks + a finished-root ring."""

    #: how many finished root spans the ring keeps when nobody captures
    RING_CAPACITY = 256

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ring: List[Span] = []
        self.spans_started = 0
        self.roots_finished = 0

    # ------------------------------------------------------------------ #
    # span creation
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(
        self,
        name: str,
        *,
        stats: Optional[IOStats] = None,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span under the current (or an explicit) parent."""
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        sp = Span(name, attrs, parent, stats)
        if parent is not None:
            parent.children.append(sp)  # list.append: atomic under the GIL
        sp._stack = stack
        stack.append(sp)
        with self._lock:
            self.spans_started += 1
        return sp

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # ------------------------------------------------------------------ #
    # finished roots
    # ------------------------------------------------------------------ #
    def _finish(self, sp: Span) -> None:
        if sp.parent is not None:
            return
        collector = getattr(self._local, "collector", None)
        if collector is not None:
            collector.append(sp)
            return
        with self._lock:
            self.roots_finished += 1
            self._ring.append(sp)
            if len(self._ring) > self.RING_CAPACITY:
                del self._ring[: len(self._ring) - self.RING_CAPACITY]

    class _Capture:
        """Collect this thread's finished root spans for a scope."""

        def __init__(self, tracer: "Tracer") -> None:
            self._tracer = tracer
            self.roots: List[Span] = []

        def __enter__(self) -> "Tracer._Capture":
            self._tracer._local.collector = self.roots
            return self

        def __exit__(self, *exc: Any) -> None:
            self._tracer._local.collector = None

    def capture(self) -> "Tracer._Capture":
        """``with tracer.capture() as cap:`` — ``cap.roots`` afterwards."""
        return Tracer._Capture(self)

    def recent_roots(self, limit: int = 32) -> List[Span]:
        with self._lock:
            return list(self._ring[-limit:])

    def stats_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": ACTIVE,
                "spans_started": self.spans_started,
                "roots_finished": self.roots_finished,
                "ring_depth": len(self._ring),
            }


#: the process tracer every instrumented site shares
TRACER = Tracer()


def span(
    name: str,
    *,
    stats: Optional[IOStats] = None,
    parent: Optional[Span] = None,
    **attrs: Any,
) -> Any:
    """The instrumentation entry point: a no-op unless tracing is enabled."""
    if BYPASS or not ACTIVE:
        return _NULL
    return TRACER.span(name, stats=stats, parent=parent, **attrs)


def current_span() -> Optional[Span]:
    """The innermost open span on this thread (None when disabled/idle)."""
    if not ACTIVE:
        return None
    return TRACER.current()


def enable() -> None:
    global ACTIVE
    ACTIVE = True


def disable() -> None:
    global ACTIVE
    ACTIVE = False


def is_enabled() -> bool:
    return ACTIVE


# --------------------------------------------------------------------------- #
# rendering
# --------------------------------------------------------------------------- #
def render_span_tree(sp: Span, *, indent: str = "") -> List[str]:
    """Pretty-print one span subtree (what ``repro trace`` shows)."""
    attrs = " ".join(
        f"{key}={value!r}" for key, value in sorted(sp.attrs.items())
    )
    line = f"{indent}{sp.name}  {sp.wall_ms:8.3f}ms  ios={sp.io.total}"
    if attrs:
        line += f"  [{attrs}]"
    lines = [line]
    for child in sp.children:
        lines.extend(render_span_tree(child, indent=indent + "  "))
    return lines
