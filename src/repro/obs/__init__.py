"""Observability: structured tracing, process metrics, slow-query log.

Three always-importable, cheaply-disableable surfaces:

* :mod:`repro.obs.tracer` — nestable spans with per-span ``IOStats``
  deltas; near-zero cost unless :func:`enable` is called.
* :mod:`repro.obs.metrics` — the process-global :data:`REGISTRY` of
  counters/gauges/latency histograms, always on.
* :mod:`repro.obs.slowlog` — threshold-gated capture of slow requests'
  span trees via :data:`SLOWLOG`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.slowlog import SLOWLOG, SlowQueryLog
from repro.obs.tracer import (
    TRACER,
    NullSpan,
    Span,
    Tracer,
    current_span,
    disable,
    enable,
    is_enabled,
    render_span_tree,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "REGISTRY",
    "SLOWLOG",
    "SlowQueryLog",
    "Span",
    "TRACER",
    "Tracer",
    "current_span",
    "disable",
    "enable",
    "is_enabled",
    "render_span_tree",
    "span",
]
