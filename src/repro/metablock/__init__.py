"""The metablock tree family (the paper's primary contribution).

* :class:`~repro.metablock.static_tree.StaticMetablockTree` — Section 3.1 /
  Theorem 3.2: optimal static structure for diagonal-corner queries
  (``O(n/B)`` blocks, ``O(log_B n + t/B)`` query I/Os).
* :class:`~repro.metablock.dynamic_tree.AugmentedMetablockTree` —
  Section 3.2 / Theorem 3.7: semi-dynamic (insert-only) version with
  ``O(log_B n + (log_B n)^2/B)`` amortized insert I/Os.
* :class:`~repro.metablock.three_sided.ThreeSidedMetablockTree` —
  Lemmas 4.3–4.4: the variant that answers 3-sided queries, used by the
  class-indexing algorithm of Section 4.
* :mod:`~repro.metablock.corner` — the corner structure of Lemma 3.1.
* :mod:`~repro.metablock.geometry` — points and the query taxonomy of Fig. 1.
"""

from repro.metablock.geometry import (
    DiagonalCornerQuery,
    PlanarPoint,
    ThreeSidedQuery,
    TwoSidedQuery,
)
from repro.metablock.corner import CornerStructure
from repro.metablock.static_tree import StaticMetablockTree
from repro.metablock.dynamic_tree import AugmentedMetablockTree
from repro.metablock.three_sided import ThreeSidedMetablockTree

__all__ = [
    "AugmentedMetablockTree",
    "CornerStructure",
    "DiagonalCornerQuery",
    "PlanarPoint",
    "StaticMetablockTree",
    "ThreeSidedMetablockTree",
    "ThreeSidedQuery",
    "TwoSidedQuery",
]
