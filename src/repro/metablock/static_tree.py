"""The static metablock tree (Section 3.1, Theorem 3.2).

A metablock tree over ``n`` points in the region ``y >= x`` is a ``B``-ary
tree of *metablocks*, each representing ``B^2`` points:

* the root holds the ``B^2`` points with the largest y values;
* the remaining points are divided by x coordinate into ``B`` groups, and a
  metablock tree is built recursively for each group;
* a group with at most ``B^2`` points becomes a leaf metablock.

Each metablock stores its points in both a vertically and a horizontally
oriented blocking (Fig. 9), keeps the bounding boxes and split values of its
children as control information, stores ``TS(M)`` — the ``B^2`` highest
points among its left siblings, horizontally blocked (Fig. 10) — and, when
its region can contain the corner of a diagonal query, a corner structure
(Lemma 3.1).

The resulting structure occupies ``O(n/B)`` blocks and answers diagonal
corner queries in ``O(log_B n + t/B)`` I/Os (Theorem 3.2), which is optimal
(Proposition 3.3).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.metablock import blocking as blk
from repro.metablock.corner import CornerStructure
from repro.metablock.geometry import BoundingBox, DiagonalCornerQuery, PlanarPoint


class Metablock:
    """One metablock: ``O(B^2)`` points plus their blocked organisations.

    The ``points`` list is the authoritative record of the metablock's
    contents and is used only for (re)building organisations and for
    invariant checks; every query path reads the disk blocks, so I/O counts
    are faithful.
    """

    __slots__ = (
        "points",
        "children",
        "is_leaf",
        "bbox",
        "subtree_min_x",
        "subtree_max_x",
        "subtree_max_y",
        "vertical",
        "horizontal",
        "corner",
        "ts",
        "ts_size",
        "control_block_id",
        "parent",
    )

    def __init__(self) -> None:
        self.points: List[PlanarPoint] = []
        self.children: List["Metablock"] = []
        self.is_leaf = True
        self.bbox: Optional[BoundingBox] = None
        self.subtree_min_x: Any = None
        self.subtree_max_x: Any = None
        self.subtree_max_y: Any = None
        self.vertical: Optional[blk.Blocking] = None
        self.horizontal: Optional[blk.Blocking] = None
        self.corner: Optional[CornerStructure] = None
        self.ts: Optional[blk.Blocking] = None
        self.ts_size: int = 0
        self.control_block_id = None
        self.parent: Optional["Metablock"] = None

    # -- organisation management ----------------------------------------- #
    def rebuild_organisations(self, disk) -> None:
        """(Re)build the vertical/horizontal blockings and corner structure."""
        self.destroy_organisations(disk)
        if not self.points:
            self.bbox = None
            return
        self.bbox = BoundingBox.of(self.points)
        self.vertical = blk.build_vertical(disk, self.points)
        self.horizontal = blk.build_horizontal(disk, self.points)
        if self.needs_corner_structure():
            self.corner = CornerStructure(disk, self.points)

    def needs_corner_structure(self) -> bool:
        """Whether a diagonal corner can fall inside this metablock's region.

        The corner ``(q, q)`` lies inside the bounding box exactly when
        ``min_y <= q <= max_x`` is satisfiable, i.e. ``min_y <= max_x``.
        The paper builds corner structures for the leaf metablocks, the
        root, and the metablocks on the root-to-rightmost-leaf path; the
        bounding-box test covers precisely the metablocks whose region the
        diagonal can enter, which includes those.
        """
        if self.bbox is None:
            return False
        return self.bbox.min_y <= self.bbox.max_x

    def destroy_organisations(self, disk) -> None:
        if self.vertical is not None:
            self.vertical.free(disk)
            self.vertical = None
        if self.horizontal is not None:
            self.horizontal.free(disk)
            self.horizontal = None
        if self.corner is not None:
            self.corner.destroy()
            self.corner = None

    def destroy_ts(self, disk) -> None:
        if self.ts is not None:
            self.ts.free(disk)
            self.ts = None
            self.ts_size = 0

    def organisation_block_count(self) -> int:
        count = 1  # control block
        if self.vertical is not None:
            count += len(self.vertical)
        if self.horizontal is not None:
            count += len(self.horizontal)
        if self.corner is not None:
            count += self.corner.block_count()
        if self.ts is not None:
            count += len(self.ts)
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else f"internal({len(self.children)})"
        return f"Metablock({kind}, n={len(self.points)})"


class StaticMetablockTree:
    """Optimal static external structure for diagonal corner queries.

    Parameters
    ----------
    disk:
        A :class:`~repro.io.disk.SimulatedDisk` (or buffer manager); its
        ``block_size`` is the paper's ``B``.
    points:
        The data points.  For the optimality guarantees they should satisfy
        ``y >= x`` (interval endpoints always do); the structure remains
        correct for arbitrary points.
    """

    #: node class instantiated by ``_build`` (the dynamic tree overrides it)
    node_class = Metablock

    def __init__(self, disk, points: Iterable[PlanarPoint]) -> None:
        self.disk = disk
        self.B = disk.block_size
        self.capacity = self.B * self.B
        pts = list(points)
        self.size = len(pts)
        self.root: Optional[Metablock] = None
        if pts:
            self.root = self._build(pts, parent=None)
            self._build_ts_structures(self.root)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, points: List[PlanarPoint], parent: Optional[Metablock]) -> Metablock:
        mb = self.node_class()
        mb.parent = parent
        mb.subtree_min_x = min(p.x for p in points)
        mb.subtree_max_x = max(p.x for p in points)
        mb.subtree_max_y = max(p.y for p in points)

        if len(points) <= self.capacity:
            mb.points = list(points)
            mb.is_leaf = True
        else:
            by_y = sorted(points, key=lambda p: (p.y, p.x), reverse=True)
            mb.points = by_y[: self.capacity]
            rest = sorted(by_y[self.capacity :], key=lambda p: (p.x, p.y))
            mb.is_leaf = False
            group_size = max(1, -(-len(rest) // self.B))  # ceil division
            for start in range(0, len(rest), group_size):
                group = rest[start : start + group_size]
                child = self._build(group, parent=mb)
                mb.children.append(child)
        mb.rebuild_organisations(self.disk)
        self._write_control_block(mb)
        return mb

    def _write_control_block(self, mb: Metablock) -> None:
        """Allocate/refresh the constant-size control block of a metablock."""
        header = {
            "is_leaf": mb.is_leaf,
            "n_points": len(mb.points),
            "children": len(mb.children),
        }
        if mb.control_block_id is None:
            block = self.disk.allocate(records=[], header=header)
            mb.control_block_id = block.block_id
        else:
            block = self.disk.read(mb.control_block_id)
            block.header.update(header)
            self.disk.write(block)

    def _build_ts_structures(self, mb: Metablock) -> None:
        """Build TS(M) for every metablock: the top ``B^2`` points of its left siblings."""
        if mb.is_leaf:
            return
        accumulated: List[PlanarPoint] = []
        for child in mb.children:
            child.destroy_ts(self.disk)
            if accumulated:
                top = sorted(accumulated, key=lambda p: (p.y, p.x), reverse=True)[: self.capacity]
                child.ts = blk.build_horizontal(self.disk, top)
                child.ts_size = len(top)
            accumulated.extend(child.points)
        for child in mb.children:
            self._build_ts_structures(child)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def diagonal_query(self, corner: Any) -> List[PlanarPoint]:
        """All points with ``x <= corner`` and ``y >= corner``.

        Cost: ``O(log_B n + t/B)`` I/Os (Theorem 3.2).
        """
        return list(self.iter_diagonal_query(corner))

    def iter_diagonal_query(self, corner: Any):
        """Stream the answer to a diagonal corner query, metablock by metablock.

        The generator performs no I/O until the first ``next()`` and then
        reads blocks only as far as the consumer iterates; output is
        deduplicated by record uid on the fly, so the stream is exactly
        :meth:`diagonal_query` without the up-front materialisation.
        """
        if self.root is None:
            return
        yield from self._iter_query_node(self.root, corner, set())

    def query(self, query: DiagonalCornerQuery) -> List[PlanarPoint]:
        """Answer a :class:`DiagonalCornerQuery` object."""
        return self.diagonal_query(query.corner)

    def supports(self, q: Any) -> bool:
        """Diagonal corner queries (Fig. 1's innermost class)."""
        return isinstance(q, DiagonalCornerQuery)

    def cost(self, q: Any) -> Any:
        """Theorem 3.2: ``O(log_B n + t/B)`` I/Os per query."""
        from repro.analysis.complexity import metablock_query_bound
        from repro.engine.protocols import Bound

        n, b = max(self.size, 2), self.B
        return Bound.of("log_B n + t/B", lambda t: metablock_query_bound(n, b, t))

    # -- per-metablock reporting ------------------------------------------ #
    def _report_own_points(self, mb: Metablock, q: Any, out: List[PlanarPoint]) -> None:
        """Report the points stored *in* ``mb`` that match the query."""
        bbox = mb.bbox
        if bbox is None or bbox.max_y < q or bbox.min_x > q:
            return
        corner_inside = bbox.min_x <= q <= bbox.max_x and bbox.min_y <= q <= bbox.max_y
        if corner_inside and mb.corner is not None:
            # Type II: the corner falls inside this metablock
            pts, _ = mb.corner.query(q)
            out.extend(pts)
        elif bbox.min_y >= q:
            if bbox.max_x <= q:
                # Type III: the whole metablock is inside the query
                pts, _ = blk.scan_horizontal_downto(self.disk, mb.horizontal, q)
                out.extend(pts)
            else:
                # Type I: crossed by the vertical side only
                pts, _ = blk.scan_vertical_upto(self.disk, mb.vertical, q)
                out.extend(p for p in pts if p.y >= q)
        elif bbox.max_x <= q:
            # Type IV: crossed by the bottom boundary only
            pts, _ = blk.scan_horizontal_downto(self.disk, mb.horizontal, q)
            out.extend(pts)
        else:
            # Corner inside the box but no corner structure (defensive
            # fallback; with the build rule this branch is unreachable).
            pts, _ = blk.scan_vertical_upto(self.disk, mb.vertical, q)
            out.extend(p for p in pts if p.y >= q)

    def _extra_sources(self, mb: Metablock, q: Any, out: List[PlanarPoint]) -> None:
        """Hook for the dynamic tree (update blocks); static tree: nothing."""

    def _ts_points(self, mb: Metablock, q: Any, out: List[PlanarPoint]) -> None:
        """Read TS(mb) top-down until the query bottom is crossed."""
        if mb.ts is None:
            return
        pts, _ = blk.scan_horizontal_downto(self.disk, mb.ts, q)
        out.extend(p for p in pts if p.x <= q)

    def _ts_covers(self, mb: Metablock, q: Any, left_siblings: List[Metablock]) -> Optional[bool]:
        """Decide how to handle the left siblings of ``mb`` for query bottom ``q``.

        Returns ``True`` when TS(mb) alone covers every matching point of
        the left siblings (and their subtrees), ``False`` when each sibling
        must be examined individually, and ``None`` when there is no TS
        information (no left siblings / empty TS).
        """
        if mb.ts is None or mb.ts_size == 0:
            return None
        ts_bottom = mb.ts.bounds[-1][1]
        if ts_bottom >= q:
            # the siblings hold at least ts_size points inside the query;
            # individual examination is amortized against that output
            return False
        full = mb.ts_size >= self.capacity
        all_leaves = all(s.is_leaf for s in left_siblings)
        if full or all_leaves:
            return True
        return False

    # -- recursion --------------------------------------------------------- #
    @staticmethod
    def _emit(points: List[PlanarPoint], seen: set):
        """Yield points not yet reported (dedupe by record uid, see geometry)."""
        for p in points:
            if p.uid in seen:
                continue
            seen.add(p.uid)
            yield p

    def _iter_query_node(self, mb: Metablock, q: Any, seen: set):
        if mb.subtree_min_x is not None and mb.subtree_min_x > q:
            return
        if mb.subtree_max_y is not None and mb.subtree_max_y < q:
            return
        # one control-block read per visited metablock (split values, child
        # pointers, blocking boundaries) — the O(log_B n) term
        if mb.control_block_id is not None:
            self.disk.read(mb.control_block_id)

        chunk: List[PlanarPoint] = []
        self._report_own_points(mb, q, chunk)
        self._extra_sources(mb, q, chunk)
        yield from self._emit(chunk, seen)

        if mb.is_leaf or not mb.children:
            return

        # classify children by their subtree x-ranges
        path_child: Optional[Metablock] = None
        left_children: List[Metablock] = []
        for child in mb.children:
            if child.subtree_min_x is None:
                continue
            if child.subtree_max_x <= q:
                left_children.append(child)
            elif child.subtree_min_x <= q <= child.subtree_max_x:
                path_child = child
            # children entirely to the right of q are skipped

        if path_child is not None and path_child.subtree_max_y >= q:
            yield from self._iter_query_node(path_child, q, seen)

        candidates = [c for c in left_children if c.subtree_max_y is not None and c.subtree_max_y >= q]
        if candidates:
            rightmost = max(left_children, key=lambda c: c.subtree_max_x)
            covered = self._ts_covers(rightmost, q, [c for c in left_children if c is not rightmost])
            if covered is True:
                chunk = []
                self._ts_points(rightmost, q, chunk)
                yield from self._emit(chunk, seen)
                if rightmost in candidates:
                    yield from self._iter_query_node(rightmost, q, seen)
            else:
                for child in candidates:
                    yield from self._iter_query_node(child, q, seen)
        chunk = []
        self._td_sources(mb, q, chunk)
        yield from self._emit(chunk, seen)

    def _td_sources(self, mb: Metablock, q: Any, out: List[PlanarPoint]) -> None:
        """Hook for the dynamic tree (TD corner structures); static: nothing."""

    # ------------------------------------------------------------------ #
    # accounting / introspection
    # ------------------------------------------------------------------ #
    def block_count(self) -> int:
        """Blocks used by the whole structure (the ``O(n/B)`` space bound)."""
        total = 0
        for mb in self.iter_metablocks():
            total += mb.organisation_block_count()
        return total

    def iter_metablocks(self):
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            mb = stack.pop()
            yield mb
            stack.extend(mb.children)

    def all_points(self) -> List[PlanarPoint]:
        out: List[PlanarPoint] = []
        for mb in self.iter_metablocks():
            out.extend(mb.points)
        return out

    def height(self) -> int:
        def depth(mb: Optional[Metablock]) -> int:
            if mb is None:
                return 0
            if not mb.children:
                return 1
            return 1 + max(depth(c) for c in mb.children)

        return depth(self.root)

    def __len__(self) -> int:
        return self.size

    def destroy(self) -> None:
        """Free every block of the structure (global rebuilds use this)."""
        for mb in list(self.iter_metablocks()):
            mb.destroy_organisations(self.disk)
            mb.destroy_ts(self.disk)
            if mb.control_block_id is not None:
                self.disk.free(mb.control_block_id)
                mb.control_block_id = None
        self.root = None
        self.size = 0

    def check_invariants(self) -> None:
        """Structural invariants used by the test suite (no I/O accounting)."""
        if self.root is None:
            assert self.size == 0
            return
        total = 0
        for mb in self.iter_metablocks():
            total += len(mb.points)
            if not mb.is_leaf:
                assert mb.children, "internal metablock must have children"
                min_y_here = min(p.y for p in mb.points) if mb.points else None
                for child in mb.children:
                    if min_y_here is not None and child.points:
                        assert max(p.y for p in child.points) <= min_y_here, (
                            "children must hold smaller y values than their parent"
                        )
        assert total == self.size, f"point count mismatch: {total} != {self.size}"
