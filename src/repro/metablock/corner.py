"""The corner structure of Lemma 3.1.

A corner structure stores a set ``S`` of at most ``O(B^2)`` points so that a
diagonal corner query on ``S`` costs at most ``2t/B + O(1)`` I/Os while the
structure occupies ``O(|S|/B)`` blocks.

Construction (Section 3.1, Figs. 11–12):

1. Build a vertically oriented blocking of ``S`` (``|S|/B`` blocks).
2. Let ``C`` be the corner candidates: the x-values where the right
   boundaries of the vertical blocks meet the diagonal ``y = x``.
3. Choose a subset ``C* ⊆ C`` greedily from upper-right to lower-left.  The
   first element is the left boundary of the rightmost block.  A candidate
   ``c_i`` is promoted into ``C*`` exactly when
   ``|Δ−_i| + |Δ+_i| > |S_i|`` — i.e. when a query cornered at ``c_i`` could
   *not* be amortized against already-blocked answers.
4. For every ``c* ∈ C*`` store the full answer ``S*(c*) = {x <= c*, y >= c*}``
   explicitly, as a horizontally oriented blocking.

Querying at a corner ``c`` locates the largest explicit corner ``e <= c``
through a constant-size index block, then reads (stage 1) the explicit
answer ``S*(e)`` top-down until the query bottom is crossed and (stage 2)
the vertical blocks strictly between ``e`` and ``c`` (Figs. 13–14).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.io.disk import BlockId
from repro.metablock import blocking as blk
from repro.metablock.geometry import PlanarPoint


class CornerStructure:
    """Explicitly blocked diagonal-corner answers for one metablock."""

    def __init__(self, disk, points: Sequence[PlanarPoint]) -> None:
        self.disk = disk
        self._points = list(points)
        self._vertical: Optional[blk.Blocking] = None
        #: explicit corners, sorted descending, each with its horizontal blocking
        self._explicit: List[Tuple[Any, blk.Blocking]] = []
        self._index_block_id: Optional[BlockId] = None
        self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _answer(self, corner: Any) -> List[PlanarPoint]:
        return [p for p in self._points if p.x <= corner and p.y >= corner]

    def _build(self) -> None:
        points = self._points
        if not points:
            return
        self._vertical = blk.build_vertical(self.disk, points)

        # Candidate corners: right boundaries of the vertical blocks, scanned
        # from upper-right to lower-left.  The first explicit corner is the
        # left boundary of the rightmost block.
        bounds = self._vertical.bounds
        rightmost_left_boundary = bounds[-1][0]
        candidates = sorted({b[1] for b in bounds[:-1]}, reverse=True)
        candidates = [c for c in candidates if c < rightmost_left_boundary]

        explicit_corners: List[Any] = [rightmost_left_boundary]
        for c in candidates:
            cj = explicit_corners[-1]
            s_i = [p for p in points if p.x <= c and p.y >= c]
            delta_plus = [p for p in points if p.x <= c and c <= p.y < cj]
            delta_minus_1 = [p for p in points if c < p.x <= cj and p.y >= cj]
            delta_minus_2 = [p for p in points if c < p.x <= cj and p.y < cj]
            if len(delta_minus_1) + len(delta_minus_2) + len(delta_plus) > len(s_i):
                explicit_corners.append(c)

        for corner in explicit_corners:
            answer = self._answer(corner)
            if answer:
                blocking = blk.build_horizontal(self.disk, answer)
            else:
                blocking = blk.Blocking([], [])
            self._explicit.append((corner, blocking))

        # A constant-size index: |C| <= |S|/B <= 2B entries, kept in one
        # (slightly wider) control block, as in the proof of Lemma 3.1.
        index_records = [corner for corner, _ in self._explicit]
        index_block = self.disk.allocate(
            records=index_records,
            capacity=max(self.disk.block_size, 2 * len(index_records) + 2),
        )
        self._index_block_id = index_block.block_id

    # ------------------------------------------------------------------ #
    # query
    # ------------------------------------------------------------------ #
    def query(self, corner: Any) -> Tuple[List[PlanarPoint], int]:
        """Answer a diagonal corner query anchored at ``(corner, corner)``.

        Returns ``(points, ios)`` where ``ios`` counts the block reads
        performed by this call (also reflected in the disk counters).
        """
        if not self._points:
            return [], 0
        ios = 0
        # read the index block to locate the two consecutive explicit corners
        self.disk.read(self._index_block_id)
        ios += 1

        explicit_corner = None
        explicit_blocking = None
        for value, blocking in self._explicit:  # sorted descending
            if value <= corner:
                explicit_corner = value
                explicit_blocking = blocking
                break

        out: List[PlanarPoint] = []

        # Stage 1: the explicitly blocked answer for the corner just below,
        # scanned top-down until the bottom of the query is crossed.
        if explicit_blocking is not None:
            stage1, reads = blk.scan_horizontal_downto(self.disk, explicit_blocking, corner)
            ios += reads
            out.extend(stage1)

        # Stage 2: vertical blocks strictly to the right of the explicit
        # corner, up to the block containing the query corner.
        lower = explicit_corner
        for bid, (first_x, last_x) in zip(self._vertical.block_ids, self._vertical.bounds):
            if lower is not None and last_x <= lower:
                continue
            if first_x > corner:
                break
            block = self.disk.read(bid)
            ios += 1
            for p in block.records:
                if p.x <= corner and p.y >= corner and (lower is None or p.x > lower):
                    out.append(p)
        return out, ios

    # ------------------------------------------------------------------ #
    # accounting / lifecycle
    # ------------------------------------------------------------------ #
    def block_count(self) -> int:
        count = 0
        if self._vertical is not None:
            count += len(self._vertical)
        for _, blocking in self._explicit:
            count += len(blocking)
        if self._index_block_id is not None:
            count += 1
        return count

    def destroy(self) -> None:
        """Free every block owned by this structure (used on rebuilds)."""
        if self._vertical is not None:
            self._vertical.free(self.disk)
            self._vertical = None
        for _, blocking in self._explicit:
            blocking.free(self.disk)
        self._explicit = []
        if self._index_block_id is not None:
            self.disk.free(self._index_block_id)
            self._index_block_id = None

    def __len__(self) -> int:
        return len(self._points)
