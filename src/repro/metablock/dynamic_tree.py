"""The augmented (semi-dynamic) metablock tree (Section 3.2, Theorem 3.7).

The static metablock tree of Section 3.1 is made insert-capable by deferring
reorganisation:

* every metablock carries an **update block** of up to ``B`` freshly inserted
  points; when it fills, a **level I reorganisation** rebuilds the
  metablock's vertical/horizontal/corner organisations (``O(B)`` I/Os, hence
  ``O(1)`` amortized per insert);
* every nonleaf metablock ``M`` carries a **TD corner structure** holding the
  points inserted into ``M``'s subtree below ``M`` since the last TS
  reorganisation of ``M``'s children; it has its own update block and is
  rebuilt every ``B`` insertions.  When it reaches ``B^2`` points it is
  discarded and the **TS structures of all of M's children are rebuilt**
  taking those points into account;
* when a metablock reaches ``2B^2`` points a **level II reorganisation**
  keeps the top ``B^2`` points and pushes the bottom ``B^2`` into the
  children (splitting the metablock in two when it is a leaf), followed by a
  TS reorganisation of the affected siblings;
* when a metablock's branching factor reaches ``2B`` the subtree rooted at it
  is rebuilt into two balanced subtrees which replace it in its parent
  (at the root, the whole tree is rebuilt).

Queries read, in addition to the static organisations, the update block of
every visited metablock and the TD structure of every visited nonleaf
metablock; both add only a constant number of I/Os per visited metablock
(Lemma 3.5), so the query bound remains ``O(log_B n + t/B)``.  Amortized
insertion costs ``O(log_B n + (log_B n)^2/B)`` I/Os (Lemma 3.6).

Reproduction notes (see DESIGN.md): TS rebuilds triggered by dynamic events
take the *subtree* point sets of the left siblings (a superset of the
paper's "points stored in the left siblings") so that the TS-shortcut in
the query remains sound in every interleaving of inserts and
reorganisations; deletions are not supported, as in the paper.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.io.disk import BlockId
from repro.metablock import blocking as blk
from repro.metablock.corner import CornerStructure
from repro.metablock.geometry import PlanarPoint
from repro.metablock.static_tree import Metablock, StaticMetablockTree


class DynamicMetablock(Metablock):
    """A metablock augmented with an update block and a TD corner structure."""

    __slots__ = (
        "update_points",
        "update_block_id",
        "td_points",
        "td_update_points",
        "td_update_block_id",
        "td_corner",
    )

    def __init__(self) -> None:
        super().__init__()
        self.update_points: List[PlanarPoint] = []
        self.update_block_id: Optional[BlockId] = None
        self.td_points: List[PlanarPoint] = []
        self.td_update_points: List[PlanarPoint] = []
        self.td_update_block_id: Optional[BlockId] = None
        self.td_corner: Optional[CornerStructure] = None

    def organisation_block_count(self) -> int:
        count = super().organisation_block_count()
        if self.update_block_id is not None:
            count += 1
        if self.td_update_block_id is not None:
            count += 1
        if self.td_corner is not None:
            count += self.td_corner.block_count()
        return count


class AugmentedMetablockTree(StaticMetablockTree):
    """Semi-dynamic metablock tree: optimal queries, amortized-cheap inserts."""

    node_class = DynamicMetablock

    def __init__(self, disk, points: Iterable[PlanarPoint] = ()) -> None:
        #: bumped by every operation that restructures the tree shape; used to
        #: abort batch loops that hold references to replaced metablocks
        self._structure_version = 0
        super().__init__(disk, points)

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert(self, point: PlanarPoint) -> None:
        """Insert a point (amortized ``O(log_B n + (log_B n)^2/B)`` I/Os)."""
        self.size += 1
        if self.root is None:
            self.root = self.node_class()
            self.root.is_leaf = True
            self.root.points = []
            self.root.subtree_min_x = point.x
            self.root.subtree_max_x = point.x
            self.root.subtree_max_y = point.y
            self.root.rebuild_organisations(self.disk)
            self._write_control_block(self.root)
        self._insert_into(self.root, point)

    def insert_many(self, points: Iterable[PlanarPoint]) -> None:
        for p in points:
            self.insert(p)

    # -- routing ----------------------------------------------------------- #
    def _insert_into(self, mb: DynamicMetablock, point: PlanarPoint) -> None:
        """Insert ``point`` into the subtree rooted at ``mb``."""
        self._stretch_subtree_bounds(mb, point)
        if mb.is_leaf or self._belongs_here(mb, point):
            self._add_to_update_block(mb, point)
            return
        child = self._route_child(mb, point)
        version = self._structure_version
        self._insert_into(child, point)
        # Record the point in TD(mb) only *after* it has reached its
        # destination: a TD-full reorganisation triggered here rebuilds the
        # TS structures from the children's subtrees, which must already
        # contain the point.  If the recursive insert restructured the tree,
        # the point is already fully accounted for in the rebuilt subtree.
        if self._structure_version == version:
            self._td_insert(mb, point)

    @staticmethod
    def _stretch_subtree_bounds(mb: Metablock, point: PlanarPoint) -> None:
        if mb.subtree_min_x is None or point.x < mb.subtree_min_x:
            mb.subtree_min_x = point.x
        if mb.subtree_max_x is None or point.x > mb.subtree_max_x:
            mb.subtree_max_x = point.x
        if mb.subtree_max_y is None or point.y > mb.subtree_max_y:
            mb.subtree_max_y = point.y

    @staticmethod
    def _belongs_here(mb: Metablock, point: PlanarPoint) -> bool:
        """A point stays at an internal metablock when it ranks among its y values."""
        if not mb.points or mb.bbox is None:
            return True
        return point.y >= mb.bbox.min_y

    @staticmethod
    def _route_child(mb: Metablock, point: PlanarPoint) -> Metablock:
        """Pick the child whose x-range should receive ``point``."""
        for child in mb.children:
            if child.subtree_min_x <= point.x <= child.subtree_max_x:
                return child
        for child in mb.children:
            if point.x < child.subtree_min_x:
                return child
        return mb.children[-1]

    # -- update blocks ------------------------------------------------------ #
    def _add_to_update_block(self, mb: DynamicMetablock, point: PlanarPoint) -> None:
        mb.update_points.append(point)
        if len(mb.update_points) >= self.B:
            self._level_one_reorganisation(mb)
        else:
            self._write_update_block(mb)
        if len(mb.points) + len(mb.update_points) >= 2 * self.capacity:
            self._level_two_reorganisation(mb)

    def _write_update_block(self, mb: DynamicMetablock) -> None:
        if mb.update_block_id is None:
            block = self.disk.allocate(records=list(mb.update_points), capacity=self.B)
            mb.update_block_id = block.block_id
        else:
            block = self.disk.read(mb.update_block_id)
            block.records = list(mb.update_points)
            self.disk.write(block)

    # -- TD corner structures ----------------------------------------------- #
    def _td_insert(self, mb: DynamicMetablock, point: PlanarPoint) -> None:
        """Record a point that descends past ``mb`` in ``TD(mb)``."""
        mb.td_update_points.append(point)
        if mb.td_update_block_id is None:
            block = self.disk.allocate(records=list(mb.td_update_points), capacity=self.B)
            mb.td_update_block_id = block.block_id
        else:
            block = self.disk.read(mb.td_update_block_id)
            block.records = list(mb.td_update_points)
            self.disk.write(block)
        if len(mb.td_update_points) >= self.B:
            mb.td_points.extend(mb.td_update_points)
            mb.td_update_points = []
            self._write_td_update_block(mb)
            if mb.td_corner is not None:
                mb.td_corner.destroy()
            mb.td_corner = CornerStructure(self.disk, mb.td_points)
        if len(mb.td_points) >= self.capacity:
            self._ts_reorganisation(mb)
            self._discard_td(mb)

    def _write_td_update_block(self, mb: DynamicMetablock) -> None:
        if mb.td_update_block_id is None:
            return
        block = self.disk.read(mb.td_update_block_id)
        block.records = list(mb.td_update_points)
        self.disk.write(block)

    def _discard_td(self, mb: DynamicMetablock) -> None:
        mb.td_points = []
        if mb.td_corner is not None:
            mb.td_corner.destroy()
            mb.td_corner = None

    # -- reorganisations ------------------------------------------------------ #
    def _level_one_reorganisation(self, mb: DynamicMetablock) -> None:
        """Merge the update block into the main organisations (O(B) I/Os)."""
        mb.points.extend(mb.update_points)
        mb.update_points = []
        self._write_update_block(mb)
        mb.rebuild_organisations(self.disk)
        self._write_control_block(mb)

    def _level_two_reorganisation(self, mb: DynamicMetablock) -> None:
        """Shrink a metablock that reached ``2B^2`` points."""
        # fold any pending update points in first
        if mb.update_points:
            self._level_one_reorganisation(mb)
        if len(mb.points) < 2 * self.capacity:
            return
        if mb.is_leaf:
            self._split_leaf(mb)
            return

        by_y = sorted(mb.points, key=lambda p: (p.y, p.x), reverse=True)
        keep = by_y[: self.capacity]
        push_down = by_y[self.capacity :]
        mb.points = keep
        mb.rebuild_organisations(self.disk)
        self._write_control_block(mb)

        # Hand every pushed-down point to a child *before* running any child
        # reorganisation, so that a cascading subtree rebuild (leaf split ->
        # branching-factor split of ``mb`` itself) can never lose points.
        receivers: List[DynamicMetablock] = []
        for point in push_down:
            child = self._route_child(mb, point)
            self._stretch_subtree_bounds(child, point)
            child.update_points.append(point)
            self._td_insert(mb, point)
            if child not in receivers:
                receivers.append(child)
        version = self._structure_version
        for child in receivers:
            if len(child.update_points) >= self.B:
                self._level_one_reorganisation(child)
            else:
                self._write_update_block(child)
            if len(child.points) + len(child.update_points) >= 2 * self.capacity:
                self._level_two_reorganisation(child)
            if self._structure_version != version:
                # the tree was restructured under us; every pending point is
                # already owned by some metablock, so it is safe to stop
                break
        if mb.parent is not None and self._structure_version == version:
            self._ts_reorganisation(mb.parent)

    def _split_leaf(self, leaf: DynamicMetablock) -> None:
        """Split a full leaf into two siblings of ``B^2`` points each."""
        self._structure_version += 1
        parent = leaf.parent
        if parent is None:
            self._rebuild_whole_tree()
            return
        ordered = sorted(leaf.points, key=lambda p: (p.x, p.y))
        mid = len(ordered) // 2
        left_points, right_points = ordered[:mid], ordered[mid:]

        new_leaves: List[DynamicMetablock] = []
        for pts in (left_points, right_points):
            node = self.node_class()
            node.is_leaf = True
            node.parent = parent
            node.points = list(pts)
            node.subtree_min_x = min(p.x for p in pts)
            node.subtree_max_x = max(p.x for p in pts)
            node.subtree_max_y = max(p.y for p in pts)
            node.rebuild_organisations(self.disk)
            self._write_control_block(node)
            new_leaves.append(node)

        idx = parent.children.index(leaf)
        self._destroy_subtree(leaf)
        parent.children[idx : idx + 1] = new_leaves
        self._write_control_block(parent)
        self._ts_reorganisation(parent)
        if len(parent.children) >= 2 * self.B:
            self._split_internal(parent)

    def _split_internal(self, mb: DynamicMetablock) -> None:
        """Rebuild the subtree at ``mb`` into two balanced subtrees."""
        self._structure_version += 1
        parent = mb.parent
        points = self._collect_subtree_points(mb)
        if parent is None:
            self._rebuild_whole_tree()
            return
        ordered = sorted(points, key=lambda p: (p.x, p.y))
        mid = len(ordered) // 2
        halves = [ordered[:mid], ordered[mid:]]
        idx = parent.children.index(mb)
        self._destroy_subtree(mb)
        new_nodes: List[Metablock] = []
        for half in halves:
            if not half:
                continue
            node = self._build(half, parent=parent)
            self._build_ts_structures(node)
            new_nodes.append(node)
        parent.children[idx : idx + 1] = new_nodes
        self._write_control_block(parent)
        self._ts_reorganisation(parent)
        if len(parent.children) >= 2 * self.B:
            self._split_internal(parent)

    def _rebuild_whole_tree(self) -> None:
        self._structure_version += 1
        points = self._collect_subtree_points(self.root) if self.root is not None else []
        if self.root is not None:
            self._destroy_subtree(self.root)
        self.root = self._build(points, parent=None) if points else None
        if self.root is not None:
            self._build_ts_structures(self.root)

    def _ts_reorganisation(self, mb: Metablock) -> None:
        """Rebuild TS structures of every child of ``mb`` from subtree point sets."""
        if mb.is_leaf or not mb.children:
            return
        accumulated: List[PlanarPoint] = []
        for child in mb.children:
            child.destroy_ts(self.disk)
            if accumulated:
                top = sorted(accumulated, key=lambda p: (p.y, p.x), reverse=True)[: self.capacity]
                child.ts = blk.build_horizontal(self.disk, top)
                child.ts_size = len(top)
            accumulated.extend(self._collect_subtree_points(child))

    # -- helpers -------------------------------------------------------------- #
    def _collect_subtree_points(self, mb: Metablock) -> List[PlanarPoint]:
        """Every live point in the subtree (main organisations + update blocks)."""
        out: List[PlanarPoint] = []
        stack = [mb]
        while stack:
            node = stack.pop()
            out.extend(node.points)
            if isinstance(node, DynamicMetablock):
                out.extend(node.update_points)
            stack.extend(node.children)
        return out

    def _destroy_subtree(self, mb: Metablock) -> None:
        stack = [mb]
        while stack:
            node = stack.pop()
            node.destroy_organisations(self.disk)
            node.destroy_ts(self.disk)
            if node.control_block_id is not None:
                self.disk.free(node.control_block_id)
                node.control_block_id = None
            if isinstance(node, DynamicMetablock):
                if node.update_block_id is not None:
                    self.disk.free(node.update_block_id)
                    node.update_block_id = None
                if node.td_update_block_id is not None:
                    self.disk.free(node.td_update_block_id)
                    node.td_update_block_id = None
                if node.td_corner is not None:
                    node.td_corner.destroy()
                    node.td_corner = None
            stack.extend(node.children)

    # ------------------------------------------------------------------ #
    # query hooks (extend the static query with the dynamic organisations)
    # ------------------------------------------------------------------ #
    def _extra_sources(self, mb: Metablock, q: Any, out: List[PlanarPoint]) -> None:
        """Read the update block of a visited metablock."""
        if not isinstance(mb, DynamicMetablock):
            return
        if mb.update_block_id is not None and mb.update_points:
            # one I/O to fetch the update block; the in-memory list is the
            # authoritative copy (identical content except transiently during
            # an interrupted batch reorganisation)
            self.disk.read(mb.update_block_id)
            out.extend(p for p in mb.update_points if p.x <= q and p.y >= q)

    def _td_sources(self, mb: Metablock, q: Any, out: List[PlanarPoint]) -> None:
        """Query the TD corner structure of a visited nonleaf metablock."""
        if not isinstance(mb, DynamicMetablock):
            return
        if mb.td_corner is not None:
            pts, _ = mb.td_corner.query(q)
            out.extend(pts)
        if mb.td_update_block_id is not None and mb.td_update_points:
            self.disk.read(mb.td_update_block_id)
            out.extend(p for p in mb.td_update_points if p.x <= q and p.y >= q)

    # ------------------------------------------------------------------ #
    # introspection / invariants
    # ------------------------------------------------------------------ #
    def destroy(self) -> None:
        """Free every block, including update blocks and TD structures."""
        if self.root is not None:
            self._destroy_subtree(self.root)
        self.root = None
        self.size = 0

    def all_points(self) -> List[PlanarPoint]:
        out: List[PlanarPoint] = []
        for mb in self.iter_metablocks():
            out.extend(mb.points)
            if isinstance(mb, DynamicMetablock):
                out.extend(mb.update_points)
        return out

    def check_invariants(self) -> None:
        if self.root is None:
            assert self.size == 0
            return
        seen = 0
        for mb in self.iter_metablocks():
            seen += len(mb.points)
            if isinstance(mb, DynamicMetablock):
                seen += len(mb.update_points)
            assert len(mb.points) <= 2 * self.capacity + self.B
            if not mb.is_leaf:
                assert mb.children
                assert len(mb.children) <= 2 * self.B + 1
        assert seen == self.size, f"point count mismatch: {seen} != {self.size}"
