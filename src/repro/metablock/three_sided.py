"""A metablock-tree variant that answers 3-sided queries (Lemmas 4.3–4.4).

Section 4 reduces class indexing over *degenerate* (path-shaped) pieces of a
class hierarchy to 3-sided range searching: report all points with
``x1 <= x <= x2`` and ``y >= y0``.  Three-sided queries differ from diagonal
corner queries in the five ways enumerated in Lemma 4.3; the metablock tree
is adapted as follows (mirroring the paper's modifications):

1. & 2.  Corners need not lie on the diagonal and both corners may fall in
   one metablock — every metablock therefore carries a small blocked
   priority search tree (:class:`~repro.pst.ExternalPST`, Lemma 4.1) over
   its own ``O(B^2)`` points instead of a corner structure.
3. Both vertical sides may pass through one metablock — handled by the same
   per-metablock 3-sided structure.
4. The two vertical sides may fall on two children of the same metablock —
   every nonleaf metablock carries a 3-sided structure over the points of
   *all its children* (``O(B^3)`` points), used exactly once per query, at
   the divergence node.
5. A query may extend to the right of the search path as well as to the
   left — every metablock carries **two** TS structures, one spanning its
   left siblings and one spanning its right siblings.

The semi-dynamic machinery (update blocks, TD structures — here 3-sided
rather than corner structures — level I/II reorganisations, branching-factor
splits) follows Section 3.2 / Lemma 4.4.

Bounds: ``O(n/B)`` blocks, queries in ``O(log_B n + log2 B + t/B)`` I/Os,
inserts in ``O(log_B n + (log_B n)^2/B)`` amortized I/Os.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.io.disk import BlockId
from repro.metablock import blocking as blk
from repro.metablock.geometry import BoundingBox, PlanarPoint, ThreeSidedQuery, dedupe_points
from repro.pst.external_pst import ExternalPST


class ThreeSidedMetablock:
    """A metablock of the 3-sided variant."""

    __slots__ = (
        "points",
        "children",
        "is_leaf",
        "bbox",
        "subtree_min_x",
        "subtree_max_x",
        "subtree_max_y",
        "desc_max_y",
        "vertical",
        "horizontal",
        "pst",
        "ts_left",
        "ts_left_size",
        "ts_right",
        "ts_right_size",
        "children_pst",
        "update_points",
        "update_block_id",
        "td_points",
        "td_update_points",
        "td_update_block_id",
        "td_pst",
        "control_block_id",
        "parent",
    )

    def __init__(self) -> None:
        self.points: List[PlanarPoint] = []
        self.children: List["ThreeSidedMetablock"] = []
        self.is_leaf = True
        self.bbox: Optional[BoundingBox] = None
        self.subtree_min_x: Any = None
        self.subtree_max_x: Any = None
        self.subtree_max_y: Any = None
        #: largest y of any point residing strictly below this metablock;
        #: conservative (never underestimates), used as a recursion guard
        self.desc_max_y: Any = None
        self.vertical: Optional[blk.Blocking] = None
        self.horizontal: Optional[blk.Blocking] = None
        self.pst: Optional[ExternalPST] = None
        self.ts_left: Optional[blk.Blocking] = None
        self.ts_left_size = 0
        self.ts_right: Optional[blk.Blocking] = None
        self.ts_right_size = 0
        self.children_pst: Optional[ExternalPST] = None
        self.update_points: List[PlanarPoint] = []
        self.update_block_id: Optional[BlockId] = None
        self.td_points: List[PlanarPoint] = []
        self.td_update_points: List[PlanarPoint] = []
        self.td_update_block_id: Optional[BlockId] = None
        self.td_pst: Optional[ExternalPST] = None
        self.control_block_id: Optional[BlockId] = None
        self.parent: Optional["ThreeSidedMetablock"] = None

    # -- organisation management ----------------------------------------- #
    def rebuild_organisations(self, disk) -> None:
        self.destroy_organisations(disk)
        if not self.points:
            self.bbox = None
            return
        self.bbox = BoundingBox.of(self.points)
        self.vertical = blk.build_vertical(disk, self.points)
        self.horizontal = blk.build_horizontal(disk, self.points)
        self.pst = ExternalPST(disk, self.points)

    def destroy_organisations(self, disk) -> None:
        if self.vertical is not None:
            self.vertical.free(disk)
            self.vertical = None
        if self.horizontal is not None:
            self.horizontal.free(disk)
            self.horizontal = None
        if self.pst is not None:
            self.pst.destroy()
            self.pst = None

    def destroy_ts(self, disk) -> None:
        if self.ts_left is not None:
            self.ts_left.free(disk)
            self.ts_left = None
            self.ts_left_size = 0
        if self.ts_right is not None:
            self.ts_right.free(disk)
            self.ts_right = None
            self.ts_right_size = 0

    def destroy_children_pst(self) -> None:
        if self.children_pst is not None:
            self.children_pst.destroy()
            self.children_pst = None

    def organisation_block_count(self) -> int:
        count = 1  # control block
        for blocking in (self.vertical, self.horizontal, self.ts_left, self.ts_right):
            if blocking is not None:
                count += len(blocking)
        for pst in (self.pst, self.children_pst, self.td_pst):
            if pst is not None:
                count += pst.block_count()
        if self.update_block_id is not None:
            count += 1
        if self.td_update_block_id is not None:
            count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else f"internal({len(self.children)})"
        return f"ThreeSidedMetablock({kind}, n={len(self.points)})"


class ThreeSidedMetablockTree:
    """Semi-dynamic external structure for 3-sided range queries."""

    def __init__(self, disk, points: Iterable[PlanarPoint] = ()) -> None:
        self.disk = disk
        self.B = disk.block_size
        self.capacity = self.B * self.B
        self._structure_version = 0
        pts = list(points)
        self.size = len(pts)
        self.root: Optional[ThreeSidedMetablock] = None
        if pts:
            self.root = self._build(pts, parent=None)
            self._build_sibling_structures(self.root)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, points: List[PlanarPoint], parent) -> ThreeSidedMetablock:
        mb = ThreeSidedMetablock()
        mb.parent = parent
        mb.subtree_min_x = min(p.x for p in points)
        mb.subtree_max_x = max(p.x for p in points)
        mb.subtree_max_y = max(p.y for p in points)

        if len(points) <= self.capacity:
            mb.points = list(points)
            mb.is_leaf = True
            mb.desc_max_y = None
        else:
            by_y = sorted(points, key=lambda p: (p.y, p.x), reverse=True)
            mb.points = by_y[: self.capacity]
            rest = sorted(by_y[self.capacity :], key=lambda p: (p.x, p.y))
            mb.is_leaf = False
            mb.desc_max_y = max(p.y for p in rest)
            group_size = max(1, -(-len(rest) // self.B))
            for start in range(0, len(rest), group_size):
                group = rest[start : start + group_size]
                child = self._build(group, parent=mb)
                mb.children.append(child)
        mb.rebuild_organisations(self.disk)
        self._write_control_block(mb)
        return mb

    def _write_control_block(self, mb: ThreeSidedMetablock) -> None:
        header = {
            "is_leaf": mb.is_leaf,
            "n_points": len(mb.points),
            "children": len(mb.children),
        }
        if mb.control_block_id is None:
            block = self.disk.allocate(records=[], header=header)
            mb.control_block_id = block.block_id
        else:
            block = self.disk.read(mb.control_block_id)
            block.header.update(header)
            self.disk.write(block)

    def _build_sibling_structures(self, mb: ThreeSidedMetablock) -> None:
        """Build both TS structures and the children 3-sided structure, recursively."""
        if mb.is_leaf or not mb.children:
            return
        self._rebuild_sibling_structures(mb)
        for child in mb.children:
            self._build_sibling_structures(child)

    def _rebuild_sibling_structures(self, mb: ThreeSidedMetablock) -> None:
        """Rebuild TS-left/TS-right of every child of ``mb`` and ``mb``'s children PST."""
        if mb.is_leaf or not mb.children:
            return
        subtree_sets = [self._collect_subtree_points(c) for c in mb.children]
        n = len(mb.children)
        # left-spanning TS structures
        accumulated: List[PlanarPoint] = []
        for i, child in enumerate(mb.children):
            child.destroy_ts(self.disk)
            if accumulated:
                top = sorted(accumulated, key=lambda p: (p.y, p.x), reverse=True)[: self.capacity]
                child.ts_left = blk.build_horizontal(self.disk, top)
                child.ts_left_size = len(top)
            accumulated.extend(subtree_sets[i])
        # right-spanning TS structures
        accumulated = []
        for i in range(n - 1, -1, -1):
            child = mb.children[i]
            if accumulated:
                top = sorted(accumulated, key=lambda p: (p.y, p.x), reverse=True)[: self.capacity]
                child.ts_right = blk.build_horizontal(self.disk, top)
                child.ts_right_size = len(top)
            accumulated.extend(subtree_sets[i])
        # children 3-sided structure (case 4 of Lemma 4.3)
        mb.destroy_children_pst()
        child_points: List[PlanarPoint] = []
        for child in mb.children:
            child_points.extend(child.points)
            child_points.extend(child.update_points)
        if child_points:
            mb.children_pst = ExternalPST(self.disk, child_points)

    # ------------------------------------------------------------------ #
    # insertion (Lemma 4.4)
    # ------------------------------------------------------------------ #
    def insert(self, point: PlanarPoint) -> None:
        """Insert a point; amortized ``O(log_B n + (log_B n)^2/B)`` I/Os."""
        self.size += 1
        if self.root is None:
            self.root = ThreeSidedMetablock()
            self.root.is_leaf = True
            self.root.subtree_min_x = point.x
            self.root.subtree_max_x = point.x
            self.root.subtree_max_y = point.y
            self.root.rebuild_organisations(self.disk)
            self._write_control_block(self.root)
        self._insert_into(self.root, point)

    def insert_many(self, points: Iterable[PlanarPoint]) -> None:
        for p in points:
            self.insert(p)

    def _insert_into(self, mb: ThreeSidedMetablock, point: PlanarPoint) -> None:
        self._stretch_subtree_bounds(mb, point)
        if mb.is_leaf or self._belongs_here(mb, point):
            self._add_to_update_block(mb, point)
            return
        child = self._route_child(mb, point)
        if mb.desc_max_y is None or point.y > mb.desc_max_y:
            mb.desc_max_y = point.y
        version = self._structure_version
        self._insert_into(child, point)
        # TD(mb) is updated only after the point has reached its destination,
        # so a TD-full rebuild of the sibling structures sees the point in
        # the children's subtrees (same ordering argument as the diagonal
        # metablock tree).
        if self._structure_version == version:
            self._td_insert(mb, point)

    @staticmethod
    def _stretch_subtree_bounds(mb: ThreeSidedMetablock, point: PlanarPoint) -> None:
        if mb.subtree_min_x is None or point.x < mb.subtree_min_x:
            mb.subtree_min_x = point.x
        if mb.subtree_max_x is None or point.x > mb.subtree_max_x:
            mb.subtree_max_x = point.x
        if mb.subtree_max_y is None or point.y > mb.subtree_max_y:
            mb.subtree_max_y = point.y

    @staticmethod
    def _belongs_here(mb: ThreeSidedMetablock, point: PlanarPoint) -> bool:
        if not mb.points or mb.bbox is None:
            return True
        return point.y >= mb.bbox.min_y

    @staticmethod
    def _route_child(mb: ThreeSidedMetablock, point: PlanarPoint) -> ThreeSidedMetablock:
        for child in mb.children:
            if child.subtree_min_x <= point.x <= child.subtree_max_x:
                return child
        for child in mb.children:
            if point.x < child.subtree_min_x:
                return child
        return mb.children[-1]

    # -- update blocks ------------------------------------------------------ #
    def _add_to_update_block(self, mb: ThreeSidedMetablock, point: PlanarPoint) -> None:
        mb.update_points.append(point)
        if len(mb.update_points) >= self.B:
            self._level_one_reorganisation(mb)
        else:
            self._write_update_block(mb)
        if len(mb.points) + len(mb.update_points) >= 2 * self.capacity:
            self._level_two_reorganisation(mb)

    def _write_update_block(self, mb: ThreeSidedMetablock) -> None:
        if mb.update_block_id is None:
            block = self.disk.allocate(records=list(mb.update_points), capacity=self.B)
            mb.update_block_id = block.block_id
        else:
            block = self.disk.read(mb.update_block_id)
            block.records = list(mb.update_points)
            self.disk.write(block)

    # -- TD structures ------------------------------------------------------- #
    def _td_insert(self, mb: ThreeSidedMetablock, point: PlanarPoint) -> None:
        mb.td_update_points.append(point)
        if mb.td_update_block_id is None:
            block = self.disk.allocate(records=list(mb.td_update_points), capacity=self.B)
            mb.td_update_block_id = block.block_id
        else:
            block = self.disk.read(mb.td_update_block_id)
            block.records = list(mb.td_update_points)
            self.disk.write(block)
        if len(mb.td_update_points) >= self.B:
            mb.td_points.extend(mb.td_update_points)
            mb.td_update_points = []
            block = self.disk.read(mb.td_update_block_id)
            block.records = []
            self.disk.write(block)
            if mb.td_pst is not None:
                mb.td_pst.destroy()
            mb.td_pst = ExternalPST(self.disk, mb.td_points)
        if len(mb.td_points) >= self.capacity:
            self._rebuild_sibling_structures(mb)
            mb.td_points = []
            if mb.td_pst is not None:
                mb.td_pst.destroy()
                mb.td_pst = None

    # -- reorganisations ------------------------------------------------------ #
    def _level_one_reorganisation(self, mb: ThreeSidedMetablock) -> None:
        mb.points.extend(mb.update_points)
        mb.update_points = []
        self._write_update_block(mb)
        mb.rebuild_organisations(self.disk)
        self._write_control_block(mb)

    def _level_two_reorganisation(self, mb: ThreeSidedMetablock) -> None:
        if mb.update_points:
            self._level_one_reorganisation(mb)
        if len(mb.points) < 2 * self.capacity:
            return
        if mb.is_leaf:
            self._split_leaf(mb)
            return
        by_y = sorted(mb.points, key=lambda p: (p.y, p.x), reverse=True)
        keep = by_y[: self.capacity]
        push_down = by_y[self.capacity :]
        mb.points = keep
        mb.rebuild_organisations(self.disk)
        self._write_control_block(mb)

        receivers: List[ThreeSidedMetablock] = []
        for point in push_down:
            child = self._route_child(mb, point)
            if mb.desc_max_y is None or point.y > mb.desc_max_y:
                mb.desc_max_y = point.y
            self._stretch_subtree_bounds(child, point)
            child.update_points.append(point)
            self._td_insert(mb, point)
            if child not in receivers:
                receivers.append(child)
        version = self._structure_version
        for child in receivers:
            if len(child.update_points) >= self.B:
                self._level_one_reorganisation(child)
            else:
                self._write_update_block(child)
            if len(child.points) + len(child.update_points) >= 2 * self.capacity:
                self._level_two_reorganisation(child)
            if self._structure_version != version:
                break
        if self._structure_version == version:
            if mb.parent is not None:
                self._rebuild_sibling_structures(mb.parent)
            self._rebuild_sibling_structures(mb)

    def _split_leaf(self, leaf: ThreeSidedMetablock) -> None:
        self._structure_version += 1
        parent = leaf.parent
        if parent is None:
            self._rebuild_whole_tree()
            return
        ordered = sorted(leaf.points, key=lambda p: (p.x, p.y))
        mid = len(ordered) // 2
        new_leaves: List[ThreeSidedMetablock] = []
        for pts in (ordered[:mid], ordered[mid:]):
            node = ThreeSidedMetablock()
            node.is_leaf = True
            node.parent = parent
            node.points = list(pts)
            node.subtree_min_x = min(p.x for p in pts)
            node.subtree_max_x = max(p.x for p in pts)
            node.subtree_max_y = max(p.y for p in pts)
            node.rebuild_organisations(self.disk)
            self._write_control_block(node)
            new_leaves.append(node)
        idx = parent.children.index(leaf)
        self._destroy_subtree(leaf)
        parent.children[idx : idx + 1] = new_leaves
        self._write_control_block(parent)
        self._rebuild_sibling_structures(parent)
        if len(parent.children) >= 2 * self.B:
            self._split_internal(parent)

    def _split_internal(self, mb: ThreeSidedMetablock) -> None:
        self._structure_version += 1
        parent = mb.parent
        points = self._collect_subtree_points(mb)
        if parent is None:
            self._rebuild_whole_tree()
            return
        ordered = sorted(points, key=lambda p: (p.x, p.y))
        mid = len(ordered) // 2
        idx = parent.children.index(mb)
        self._destroy_subtree(mb)
        new_nodes: List[ThreeSidedMetablock] = []
        for half in (ordered[:mid], ordered[mid:]):
            if not half:
                continue
            node = self._build(half, parent=parent)
            self._build_sibling_structures(node)
            new_nodes.append(node)
        parent.children[idx : idx + 1] = new_nodes
        self._write_control_block(parent)
        self._rebuild_sibling_structures(parent)
        if len(parent.children) >= 2 * self.B:
            self._split_internal(parent)

    def _rebuild_whole_tree(self) -> None:
        self._structure_version += 1
        points = self._collect_subtree_points(self.root) if self.root is not None else []
        if self.root is not None:
            self._destroy_subtree(self.root)
        self.root = self._build(points, parent=None) if points else None
        if self.root is not None:
            self._build_sibling_structures(self.root)

    # -- helpers -------------------------------------------------------------- #
    def _collect_subtree_points(self, mb: ThreeSidedMetablock) -> List[PlanarPoint]:
        out: List[PlanarPoint] = []
        stack = [mb]
        while stack:
            node = stack.pop()
            out.extend(node.points)
            out.extend(node.update_points)
            stack.extend(node.children)
        return out

    def _destroy_subtree(self, mb: ThreeSidedMetablock) -> None:
        stack = [mb]
        while stack:
            node = stack.pop()
            node.destroy_organisations(self.disk)
            node.destroy_ts(self.disk)
            node.destroy_children_pst()
            if node.td_pst is not None:
                node.td_pst.destroy()
                node.td_pst = None
            for bid_attr in ("control_block_id", "update_block_id", "td_update_block_id"):
                bid = getattr(node, bid_attr)
                if bid is not None:
                    self.disk.free(bid)
                    setattr(node, bid_attr, None)
            stack.extend(node.children)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query_3sided(self, x1: Any, x2: Any, y0: Any) -> List[PlanarPoint]:
        """All points with ``x1 <= x <= x2`` and ``y >= y0``."""
        if x2 < x1 or self.root is None:
            return []
        out: List[PlanarPoint] = []
        self._query_node(self.root, x1, x2, y0, out)
        return dedupe_points(out)

    def query(self, query: ThreeSidedQuery) -> List[PlanarPoint]:
        return self.query_3sided(query.x1, query.x2, query.y0)

    def supports(self, q: Any) -> bool:
        """3-sided query shapes (Lemma 4.4)."""
        return isinstance(q, ThreeSidedQuery)

    def cost(self, q: Any) -> Any:
        """Lemma 4.4: ``O(log_B n + log2 B + t/B)`` I/Os per query."""
        from repro.analysis.complexity import three_sided_query_bound
        from repro.engine.protocols import Bound

        n, b = max(self.size, 2), self.B
        return Bound.of(
            "log_B n + log2 B + t/B", lambda t: three_sided_query_bound(n, b, t)
        )

    def _query_node(self, mb: ThreeSidedMetablock, x1, x2, y0, out: List[PlanarPoint]) -> None:
        if mb.subtree_min_x is None or mb.subtree_min_x > x2 or mb.subtree_max_x < x1:
            return
        if mb.subtree_max_y is not None and mb.subtree_max_y < y0:
            return
        if mb.control_block_id is not None:
            self.disk.read(mb.control_block_id)

        # the metablock's own points (cases 1–3 of Lemma 4.3)
        if mb.pst is not None:
            out.extend(mb.pst.query_3sided(x1, x2, y0))
        if mb.update_block_id is not None and mb.update_points:
            # one I/O for the update block; the in-memory list is authoritative
            self.disk.read(mb.update_block_id)
            out.extend(p for p in mb.update_points if x1 <= p.x <= x2 and p.y >= y0)

        if mb.is_leaf or not mb.children:
            return

        # inserted points that descended past this metablock
        if mb.td_pst is not None:
            out.extend(mb.td_pst.query_3sided(x1, x2, y0))
        if mb.td_update_block_id is not None and mb.td_update_points:
            self.disk.read(mb.td_update_block_id)
            out.extend(p for p in mb.td_update_points if x1 <= p.x <= x2 and p.y >= y0)

        # classify the children against the two vertical sides; ties at group
        # boundaries can make more than one child overlap a query side, so
        # boundary children are kept as a list
        boundaries: List[ThreeSidedMetablock] = []
        middles: List[ThreeSidedMetablock] = []
        for child in mb.children:
            lo, hi = child.subtree_min_x, child.subtree_max_x
            if lo is None or hi < x1 or lo > x2:
                continue
            if x1 <= lo and hi <= x2:
                middles.append(child)
            else:
                boundaries.append(child)

        for child in boundaries:
            if child.subtree_max_y is not None and child.subtree_max_y >= y0:
                self._query_node(child, x1, x2, y0, out)
        if not middles:
            return

        left_side = [c for c in boundaries if c.subtree_min_x <= x1 <= c.subtree_max_x]
        right_side = [c for c in boundaries if c.subtree_min_x <= x2 <= c.subtree_max_x]
        has_left = bool(left_side)

        if has_left and right_side and any(c not in left_side for c in right_side):
            # case 4 of Lemma 4.3: the two sides diverge at this metablock
            self._handle_divergence_middles(mb, middles, x1, x2, y0, out)
        elif has_left:
            anchor = max(left_side, key=lambda c: c.subtree_max_x)
            self._handle_sided_middles(anchor, middles, x1, x2, y0, out, side="right")
        elif right_side:
            anchor = min(right_side, key=lambda c: c.subtree_min_x)
            self._handle_sided_middles(anchor, middles, x1, x2, y0, out, side="left")
        else:
            # the whole x-extent of this metablock lies inside [x1, x2]
            for child in middles:
                if child.subtree_max_y is not None and child.subtree_max_y >= y0:
                    self._query_node(child, x1, x2, y0, out)

    # -- middle-children strategies ---------------------------------------- #
    def _handle_divergence_middles(self, mb, middles, x1, x2, y0, out) -> None:
        """Case 4 of Lemma 4.3: both vertical sides fall on children of ``mb``."""
        if mb.children_pst is not None:
            out.extend(mb.children_pst.query_3sided(x1, x2, y0))
        for child in middles:
            fully_above = child.bbox is not None and child.bbox.min_y >= y0
            deep_candidates = child.desc_max_y is not None and child.desc_max_y >= y0
            if fully_above or deep_candidates:
                self._query_node(child, x1, x2, y0, out)

    def _handle_sided_middles(self, boundary, middles, x1, x2, y0, out, side: str) -> None:
        """One-sided case: the query extends past ``boundary`` over its siblings."""
        ts = boundary.ts_right if side == "right" else boundary.ts_left
        ts_size = boundary.ts_right_size if side == "right" else boundary.ts_left_size
        # Only siblings on the ``side`` of the anchor are spanned by its TS
        # structure; a (tie-induced) middle child on the other side is simply
        # examined individually.
        if side == "right":
            on_side = [c for c in middles if c.subtree_max_x >= boundary.subtree_max_x]
        else:
            on_side = [c for c in middles if c.subtree_min_x <= boundary.subtree_min_x]
        off_side = [c for c in middles if c not in on_side]
        for child in off_side:
            if child.subtree_max_y is not None and child.subtree_max_y >= y0:
                self._query_node(child, x1, x2, y0, out)
        middles = on_side
        candidates = [c for c in middles if c.subtree_max_y is not None and c.subtree_max_y >= y0]
        if not candidates:
            return
        covered = False
        if ts is not None and ts_size > 0:
            ts_bottom = ts.bounds[-1][1]
            if ts_bottom < y0 and (ts_size >= self.capacity or all(c.is_leaf for c in middles)):
                covered = True
        if covered:
            pts, _ = blk.scan_horizontal_downto(self.disk, ts, y0)
            out.extend(p for p in pts if x1 <= p.x <= x2)
            # deep descendants of middles cannot reach above y0 here (their
            # metablocks are all crossed by or below the query bottom), except
            # through the conservative desc_max_y guard:
            for child in candidates:
                if child.desc_max_y is not None and child.desc_max_y >= y0 and not child.is_leaf:
                    self._query_node(child, x1, x2, y0, out)
        else:
            for child in candidates:
                self._query_node(child, x1, x2, y0, out)

    # ------------------------------------------------------------------ #
    # accounting / introspection
    # ------------------------------------------------------------------ #
    def iter_metablocks(self):
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            mb = stack.pop()
            yield mb
            stack.extend(mb.children)

    def block_count(self) -> int:
        return sum(mb.organisation_block_count() for mb in self.iter_metablocks())

    def destroy(self) -> None:
        """Free every block of the structure (global rebuilds use this)."""
        if self.root is not None:
            self._destroy_subtree(self.root)
        self.root = None
        self.size = 0

    def all_points(self) -> List[PlanarPoint]:
        out: List[PlanarPoint] = []
        for mb in self.iter_metablocks():
            out.extend(mb.points)
            out.extend(mb.update_points)
        return out

    def height(self) -> int:
        def depth(mb) -> int:
            if mb is None:
                return 0
            if not mb.children:
                return 1
            return 1 + max(depth(c) for c in mb.children)

        return depth(self.root)

    def __len__(self) -> int:
        return self.size

    def check_invariants(self) -> None:
        if self.root is None:
            assert self.size == 0
            return
        seen = 0
        for mb in self.iter_metablocks():
            seen += len(mb.points) + len(mb.update_points)
            assert len(mb.points) <= 2 * self.capacity + self.B
            if not mb.is_leaf:
                assert mb.children
        assert seen == self.size, f"point count mismatch: {seen} != {self.size}"
