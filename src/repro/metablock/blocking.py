"""Horizontally and vertically oriented blockings (Fig. 9).

A metablock stores its ``O(B^2)`` points twice:

* a **vertically oriented** blocking — points sorted by x, packed into
  blocks of ``B`` left to right,
* a **horizontally oriented** blocking — points sorted by y (descending),
  packed into blocks of ``B`` top to bottom.

Each data point therefore appears in two blocks inside its metablock, which
doubles the constant but keeps the total space at ``O(n/B)`` blocks
(Section 3.1).  This module provides the two blockings plus the scan
primitives the query procedures use ("read blocks until the boundary of the
query is crossed, wasting at most one block").
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.io.disk import BlockId
from repro.metablock.geometry import PlanarPoint


class Blocking:
    """A sequence of disk blocks holding a fixed ordering of points.

    Attributes
    ----------
    block_ids:
        The blocks, in scan order.
    bounds:
        Per block, the (first, last) ordering-key values it contains, kept
        as control information so scans know where to stop without an extra
        read (the paper keeps the same information in each metablock's
        constant-size control blocks).
    """

    def __init__(self, block_ids: List[BlockId], bounds: List[Tuple[Any, Any]]) -> None:
        self.block_ids = block_ids
        self.bounds = bounds

    def __len__(self) -> int:
        return len(self.block_ids)

    def free(self, disk) -> None:
        for bid in self.block_ids:
            disk.free(bid)
        self.block_ids = []
        self.bounds = []


def build_vertical(disk, points: Sequence[PlanarPoint]) -> Blocking:
    """Pack ``points`` into blocks of ``B`` by ascending x (Fig. 9a)."""
    ordered = sorted(points, key=lambda p: (p.x, p.y))
    return _pack(disk, ordered, key=lambda p: p.x)


def build_horizontal(disk, points: Sequence[PlanarPoint]) -> Blocking:
    """Pack ``points`` into blocks of ``B`` by descending y (Fig. 9b)."""
    ordered = sorted(points, key=lambda p: (-_as_sortable(p.y), p.x))
    return _pack(disk, ordered, key=lambda p: p.y)


def _as_sortable(value: Any) -> Any:
    return value


def _pack(disk, ordered: List[PlanarPoint], key) -> Blocking:
    B = disk.block_size
    block_ids: List[BlockId] = []
    bounds: List[Tuple[Any, Any]] = []
    for start in range(0, len(ordered), B):
        chunk = ordered[start : start + B]
        block = disk.allocate(records=list(chunk))
        block_ids.append(block.block_id)
        bounds.append((key(chunk[0]), key(chunk[-1])))
    return Blocking(block_ids, bounds)


def scan_vertical_upto(disk, blocking: Blocking, x_max: Any) -> Tuple[List[PlanarPoint], int]:
    """Read vertical blocks left-to-right while they may contain ``x <= x_max``.

    Returns the matching points and the number of blocks read.  At most one
    block read contains no matching point (the one that crosses ``x_max``),
    which is the "at most one block that is not completely full" accounting
    of Theorem 3.2.
    """
    out: List[PlanarPoint] = []
    reads = 0
    for bid, (first_x, _last_x) in zip(blocking.block_ids, blocking.bounds):
        if first_x > x_max:
            break
        block = disk.read(bid)
        reads += 1
        for p in block.records:
            if p.x <= x_max:
                out.append(p)
    return out, reads


def scan_horizontal_downto(disk, blocking: Blocking, y_min: Any) -> Tuple[List[PlanarPoint], int]:
    """Read horizontal blocks top-to-bottom while they may contain ``y >= y_min``."""
    out: List[PlanarPoint] = []
    reads = 0
    for bid, (first_y, _last_y) in zip(blocking.block_ids, blocking.bounds):
        if first_y < y_min:
            break
        block = disk.read(bid)
        reads += 1
        for p in block.records:
            if p.y >= y_min:
                out.append(p)
    return out, reads
