"""Planar points and the query taxonomy of Fig. 1.

The paper's Fig. 1 orders its query classes by generality:

    diagonal corner  ⊂  2-sided  ⊂  3-sided  ⊂  general 2-D range.

* A **diagonal corner query** anchored at ``(q, q)`` asks for all points with
  ``x <= q`` and ``y >= q`` (the quarter plane above and to the left of a
  corner on the line ``x = y``).  Stabbing queries on intervals map to these
  queries (Proposition 2.2).
* A **2-sided query** anchored at ``(a, b)`` asks for ``x <= a, y >= b``.
* A **3-sided query** asks for ``x1 <= x <= x2, y >= y0`` — one of the four
  sides of the rectangle is at infinity.  Class indexing over degenerate
  hierarchies maps to these (Lemma 4.3).

All structures in :mod:`repro.metablock` store :class:`PlanarPoint` records.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, List

from repro.algebra import AlgebraicQuery

#: monotone source of record uids; every constructed point gets a fresh one
_POINT_UIDS = itertools.count()


@dataclass(frozen=True, order=True)
class PlanarPoint:
    """A point ``(x, y)`` with an optional payload (not part of identity order).

    For interval management the point is ``(low, high)`` and therefore lies
    on or above the diagonal ``y = x``; the structures do not require that,
    except where a theorem explicitly assumes it (noted per class).

    Every point carries a ``uid``: a process-unique record identity that is
    preserved by (de)serialization.  Structures that store the same record
    in several blocks (update blocks, corner structures, TS blockings) use
    it to deduplicate query output — object identity is not sufficient on
    storage backends that round-trip pages through a file.
    """

    x: Any
    y: Any
    payload: Any = field(default=None, compare=False)
    uid: int = field(
        default_factory=lambda: next(_POINT_UIDS), compare=False, repr=False
    )

    def as_tuple(self) -> tuple:
        return (self.x, self.y)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x}, {self.y})"


@dataclass(frozen=True)
class DiagonalCornerQuery(AlgebraicQuery):
    """``x <= corner`` and ``y >= corner`` — corner anchored on ``x = y``."""

    corner: Any

    def matches(self, point: PlanarPoint) -> bool:
        return point.x <= self.corner and point.y >= self.corner

    def filter(self, points: Iterable[PlanarPoint]) -> List[PlanarPoint]:
        """Brute-force evaluation (the correctness oracle)."""
        return [p for p in points if self.matches(p)]


@dataclass(frozen=True)
class TwoSidedQuery(AlgebraicQuery):
    """``x <= x_max`` and ``y >= y_min`` (corner anywhere)."""

    x_max: Any
    y_min: Any

    def matches(self, point: PlanarPoint) -> bool:
        return point.x <= self.x_max and point.y >= self.y_min

    def filter(self, points: Iterable[PlanarPoint]) -> List[PlanarPoint]:
        return [p for p in points if self.matches(p)]


@dataclass(frozen=True)
class ThreeSidedQuery(AlgebraicQuery):
    """``x1 <= x <= x2`` and ``y >= y0``."""

    x1: Any
    x2: Any
    y0: Any

    def __post_init__(self) -> None:
        if self.x2 < self.x1:
            raise ValueError(f"three-sided query has empty x-range [{self.x1}, {self.x2}]")

    def matches(self, point: PlanarPoint) -> bool:
        return self.x1 <= point.x <= self.x2 and point.y >= self.y0

    def filter(self, points: Iterable[PlanarPoint]) -> List[PlanarPoint]:
        return [p for p in points if self.matches(p)]


@dataclass(frozen=True)
class RangeQuery(AlgebraicQuery):
    """A general two-dimensional range query ``x1<=x<=x2, y1<=y<=y2``."""

    x1: Any
    x2: Any
    y1: Any
    y2: Any

    def matches(self, point: PlanarPoint) -> bool:
        return self.x1 <= point.x <= self.x2 and self.y1 <= point.y <= self.y2

    def filter(self, points: Iterable[PlanarPoint]) -> List[PlanarPoint]:
        return [p for p in points if self.matches(p)]


@dataclass
class BoundingBox:
    """Axis-aligned minimum bounding rectangle of a point set."""

    min_x: Any
    max_x: Any
    min_y: Any
    max_y: Any

    @classmethod
    def of(cls, points: Iterable[PlanarPoint]) -> "BoundingBox":
        pts = list(points)
        if not pts:
            raise ValueError("bounding box of an empty point set")
        return cls(
            min_x=min(p.x for p in pts),
            max_x=max(p.x for p in pts),
            min_y=min(p.y for p in pts),
            max_y=max(p.y for p in pts),
        )

    def contains_x(self, x: Any) -> bool:
        return self.min_x <= x <= self.max_x

    def crosses_horizontal(self, y: Any) -> bool:
        """Whether the horizontal line at ``y`` crosses the box interior."""
        return self.min_y <= y <= self.max_y

    def entirely_above(self, y: Any) -> bool:
        return self.min_y >= y

    def entirely_below(self, y: Any) -> bool:
        return self.max_y < y

    def entirely_left_of(self, x: Any) -> bool:
        return self.max_x <= x

    def entirely_right_of(self, x: Any) -> bool:
        return self.min_x > x


def dedupe_points(points: Iterable[PlanarPoint]) -> List[PlanarPoint]:
    """Remove duplicate reports while preserving order.

    Identity is the record ``uid``: the structures store the same
    :class:`PlanarPoint` record in every block that mentions it (the update
    block, the TD corner structure, ...), so a record surfaced through two
    organisations (see DESIGN.md, "Double-reporting") is reported once while
    two distinct records that happen to share coordinates are both kept.
    The uid survives serialization, so deduplication also works on backends
    (``FileDisk``) where two reads of the same page yield distinct objects.
    """
    seen = set()
    out: List[PlanarPoint] = []
    for p in points:
        key = p.uid
        if key in seen:
            continue
        seen.add(key)
        out.append(p)
    return out
