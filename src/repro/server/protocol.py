"""The wire protocol: JSON-line request/response framing and codecs.

One request per line, one response per line, UTF-8 JSON both ways — dumb
enough to drive with ``netcat``, structured enough to carry the whole
engine surface:

========== =============================================================
command    payload
========== =============================================================
``ping``   —
``create`` ``index``, ``kind`` (``collection``/``interval``),
           ``records``, ``dynamic``
``query``  ``index``, ``q`` (a serialized algebra node)
``prepare``  ``index``, ``q`` (may contain ``Param`` nodes)
``run``    ``handle`` (a lease from ``prepare``), ``params``
``insert`` ``index``, ``record``
``delete`` ``index``, ``record`` *or* ``q`` (+ optional ``limit``)
``bulk_load``  ``index``, ``records``
``explain``  ``index``, ``q``
``stats``  —
``metrics``  — (the observability export: counter/gauge/histogram
           snapshot, plan-cache hit ratio, WAL group-absorption,
           epoch-pin age, uptime; what ``repro top`` polls)
``drop``   ``index``
``shutdown``  —
========== =============================================================

Query descriptors cross the wire through the algebra's
:meth:`~repro.algebra.AlgebraicQuery.to_dict` /
:func:`~repro.engine.queries.query_from_dict` round-trip, which preserves
``signature()`` and ``matches`` semantics for every node type, ``Param``
placeholders included.  Records travel as tagged dicts
(:func:`record_to_dict` / :func:`record_from_dict`); payloads must be
JSON-serializable.

Responses are ``{"id": ..., "ok": true, ...}`` or a **structured error**
``{"id": ..., "ok": false, "error": {"code": ..., "type": ..., "message":
...}}`` where ``code`` classifies the failure for programmatic handling:

* ``bad_request`` — malformed JSON, unknown command, bad query node;
* ``unknown_index`` — the engine's descriptive :class:`KeyError`;
* ``stale_handle`` — a prepared-query lease that expired (unknown id, or
  the index it was planned against was dropped/re-created);
* ``conflict`` — duplicate-uid inserts, write-intent contention;
* ``shard_unavailable`` — a cluster router could not reach a shard that
  the request needs (the shard died mid-request or is restarting);
* ``internal`` — anything else (the message carries the repr).

Cluster extensions (additive; single servers ignore them): write commands
(``create`` / ``insert`` / ``bulk_load``) accept ``keep_uids: true``,
which makes the server honour the uids already on the wire instead of
minting fresh ones — what a router upstream uses after minting
authoritative uids itself, so a record keeps one identity across the
whole cluster.  Read responses from a router additionally carry
``shards_contacted``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.engine.queries import query_from_dict
from repro.interval import Interval

PROTOCOL_VERSION = 1

#: commands a server must route (the client refuses to send others)
COMMANDS = (
    "ping", "create", "query", "prepare", "run", "insert", "delete",
    "bulk_load", "explain", "stats", "metrics", "drop", "shutdown",
)

#: every structured ``error.code`` the protocol can produce — pinned
#: against :func:`classify_error`'s actual returns by the
#: ``wire-exhaustiveness`` lint rule and the conformance tests
ERROR_CODES = (
    "bad_request",
    "conflict",
    "internal",
    "shard_unavailable",
    "stale_handle",
    "unknown_index",
)


class ProtocolError(ValueError):
    """A malformed wire message (not JSON, not a dict, no command...)."""


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #
def encode_message(message: Dict[str, Any]) -> bytes:
    """One protocol message as a JSON line (the only frame format)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one JSON line into a message dict, or raise :class:`ProtocolError`."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"a protocol message is a JSON object, not {type(message).__name__}"
        )
    return message


# --------------------------------------------------------------------------- #
# record codec
# --------------------------------------------------------------------------- #
def record_to_dict(record: Any) -> Dict[str, Any]:
    """A stored record as wire data (uid included — it names the record)."""
    if isinstance(record, Interval):
        return {
            "record": "interval",
            "low": record.low,
            "high": record.high,
            "payload": record.payload,
            "uid": record.uid,
        }
    raise ProtocolError(
        f"record type {type(record).__name__} has no wire form; the server "
        "serves interval collections"
    )


def record_from_dict(data: Dict[str, Any], *, fresh_uid: bool = False) -> Any:
    """Rebuild a record from its wire form.

    ``fresh_uid`` mints a new process-unique uid instead of honouring the
    one on the wire — what the server's *insert* paths use, so clients can
    never collide with resident records; the returned (serialized) record
    carries the authoritative uid back to the client, which then names it
    in ``delete`` requests.
    """
    if not isinstance(data, dict):
        raise ProtocolError(f"not a serialized record: {data!r}")
    kind = data.get("record", "interval")
    if kind != "interval":
        raise ProtocolError(f"unknown record kind {kind!r}")
    try:
        kwargs: Dict[str, Any] = {
            "low": data["low"],
            "high": data["high"],
            "payload": data.get("payload"),
        }
    except KeyError as exc:
        raise ProtocolError(f"interval record missing field {exc}") from exc
    if not fresh_uid and "uid" in data:
        kwargs["uid"] = data["uid"]
    try:
        return Interval(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed interval record {data!r}: {exc}") from exc


def records_to_wire(records: List[Any]) -> List[Dict[str, Any]]:
    return [record_to_dict(r) for r in records]


def records_from_wire(data: List[Any], *, fresh_uid: bool = False) -> List[Any]:
    if not isinstance(data, list):
        raise ProtocolError(f"'records' must be a list, not {type(data).__name__}")
    return [record_from_dict(d, fresh_uid=fresh_uid) for d in data]


# --------------------------------------------------------------------------- #
# query codec (thin veneer over the algebra's own wire form)
# --------------------------------------------------------------------------- #
def query_to_wire(q: Any) -> Dict[str, Any]:
    return q.to_dict()


def query_from_wire(data: Any) -> Any:
    try:
        return query_from_dict(data)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


# --------------------------------------------------------------------------- #
# structured errors
# --------------------------------------------------------------------------- #
def classify_error(exc: BaseException) -> str:
    """The structured ``error.code`` for an exception (see module docstring)."""
    from repro.engine.session import WriteIntentError

    if isinstance(exc, ProtocolError):
        return "bad_request"
    if isinstance(exc, StaleHandleError):
        return "stale_handle"
    if isinstance(exc, ShardUnavailableError):
        return "shard_unavailable"
    code = getattr(exc, "code", None)
    if isinstance(code, str) and code:
        # a router relaying a shard's already-structured error keeps the
        # shard's classification (the client's ServerError carries .code)
        return code
    if isinstance(exc, KeyError):
        message = exc.args[0] if exc.args else ""
        if isinstance(message, str) and "parameter" in message:
            return "bad_request"  # bad prepared-query bindings, not a name
        return "unknown_index"
    if isinstance(exc, WriteIntentError):
        return "conflict"
    if isinstance(exc, ValueError):
        return "conflict" if "uid" in str(exc) else "bad_request"
    if isinstance(exc, RuntimeError) and "prepare" in str(exc):
        # the prepared-query identity check: dropped / re-created index
        return "stale_handle"
    return "internal"


class StaleHandleError(RuntimeError):
    """A ``run`` named a prepared-handle id this connection never leased
    (or one whose lease was invalidated)."""


class ShardUnavailableError(RuntimeError):
    """A cluster shard this request needs cannot be reached.

    Raised by the router's shard links instead of letting a dead shard's
    ``ConnectionError`` hang or tear down the client connection; the
    frontend serializes it as a structured ``shard_unavailable`` error.
    """


def error_response(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    """The structured error response for a failed request."""
    message = exc.args[0] if exc.args and isinstance(exc.args[0], str) else repr(exc)
    type_ = getattr(exc, "type", None)
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "code": classify_error(exc),
            "type": type_ if isinstance(type_, str) else type(exc).__name__,
            "message": message,
        },
    }


def ok_response(request_id: Any, **payload: Any) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, **payload}
