"""``ReproClient`` — the blocking JSON-line client for :class:`ReproServer`.

One socket, one request in flight at a time (the protocol is strictly
request/response per connection; open several clients for parallelism —
that is exactly what the concurrent workload driver does).  Records come
back as real :class:`~repro.interval.Interval` objects whose uids are the
server's authoritative record names — pass them straight back to
:meth:`~ReproClient.delete`.

>>> with ReproClient("127.0.0.1", 7411) as db:          # doctest: +SKIP
...     db.create("ivs", records=[Interval(1, 5)])
...     stab = db.prepare("ivs", Stab(Param("x")))
...     hits = stab.run(x=3.0)
...     print(hits.count, hits.ios, hits.bound)
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.server import protocol as P


class ServerError(RuntimeError):
    """A structured error response from the server.

    ``code`` is the protocol's classification (``bad_request`` /
    ``unknown_index`` / ``stale_handle`` / ``conflict`` / ``internal``),
    ``type`` the server-side exception class name.
    """

    def __init__(self, code: str, type_: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.type = type_

    def __str__(self) -> str:
        return f"[{self.code}/{self.type}] {super().__str__()}"


@dataclass
class ClientResult:
    """One answered request: records plus the server's per-request accounting."""

    records: List[Any] = field(default_factory=list)
    ios: int = 0
    bound: Optional[float] = None
    stats: Dict[str, Any] = field(default_factory=dict)
    from_cache: Optional[bool] = None
    raw: Dict[str, Any] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class PreparedHandle:
    """A prepared-query lease on one connection (see ``prepare``)."""

    client: "ReproClient"
    handle: int
    index: str
    params: List[str]

    def run(self, **params: Any) -> ClientResult:
        return self.client.run(self, **params)


class ReproClient:
    """A blocking client for one server connection.

    Connecting retries refused/unreachable sockets with **capped, jittered
    exponential backoff** (``connect_retries`` extra attempts, delays of
    ``retry_base * 2^k`` seconds capped at ``retry_cap``, each scaled by a
    uniform 50–100% jitter so a thundering herd of clients spreads out).
    That absorbs the startup race against a server/router that just
    printed its address, and shard restarts behind a router, without
    masking a genuinely-down server for more than ~a second by default.
    Pass ``connect_retries=0`` for the old fail-fast behaviour.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 60.0,
        connect_retries: int = 3,
        retry_base: float = 0.05,
        retry_cap: float = 1.0,
    ) -> None:
        attempt = 0
        while True:
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError:
                if attempt >= max(connect_retries, 0):
                    raise
                delay = min(retry_cap, retry_base * (2 ** attempt))
                time.sleep(delay * (0.5 + random.random() / 2))
                attempt += 1
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def call(self, cmd: str, **payload: Any) -> Dict[str, Any]:
        """Send one command, wait for its response, unwrap errors."""
        if cmd not in P.COMMANDS:
            raise ValueError(f"unknown command {cmd!r}; know {sorted(P.COMMANDS)}")
        self._next_id += 1
        request_id = self._next_id
        self._wfile.write(P.encode_message({"id": request_id, "cmd": cmd, **payload}))
        self._wfile.flush()
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = P.decode_message(line)
        if response.get("id") != request_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        if not response.get("ok"):
            error = response.get("error", {})
            raise ServerError(
                error.get("code", "internal"),
                error.get("type", "Exception"),
                error.get("message", "unknown server error"),
            )
        return response

    def close(self) -> None:
        for closer in (self._wfile.close, self._rfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the command surface
    # ------------------------------------------------------------------ #
    @staticmethod
    def _result(response: Dict[str, Any]) -> ClientResult:
        return ClientResult(
            records=[P.record_from_dict(d) for d in response.get("records", [])],
            ios=response.get("ios", 0),
            bound=response.get("bound"),
            stats=response.get("stats", {}),
            from_cache=response.get("from_cache"),
            raw=response,
        )

    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def create(
        self,
        index: str,
        records: List[Any] = (),
        *,
        kind: str = "collection",
        dynamic: bool = True,
    ) -> Dict[str, Any]:
        return self.call(
            "create",
            index=index,
            kind=kind,
            dynamic=dynamic,
            records=P.records_to_wire(list(records)),
        )

    def query(self, index: str, q: Any) -> ClientResult:
        return self._result(self.call("query", index=index, q=P.query_to_wire(q)))

    def prepare(self, index: str, q: Any) -> PreparedHandle:
        response = self.call("prepare", index=index, q=P.query_to_wire(q))
        return PreparedHandle(
            self, response["handle"], response["index"], response["params"]
        )

    def run(self, handle: Any, **params: Any) -> ClientResult:
        handle_id = handle.handle if isinstance(handle, PreparedHandle) else handle
        return self._result(self.call("run", handle=handle_id, params=params))

    def insert(self, index: str, record: Any) -> Any:
        """Insert; returns the *stored* record (authoritative server uid)."""
        response = self.call(
            "insert", index=index, record=P.record_to_dict(record)
        )
        return P.record_from_dict(response["record"])

    def delete(self, index: str, record: Any = None, *, q: Any = None,
               limit: Optional[int] = None) -> Dict[str, Any]:
        if (record is None) == (q is None):
            raise ValueError("delete takes exactly one of record= or q=")
        if record is not None:
            return self.call("delete", index=index, record=P.record_to_dict(record))
        payload: Dict[str, Any] = {"index": index, "q": P.query_to_wire(q)}
        if limit is not None:
            payload["limit"] = limit
        return self.call("delete", **payload)

    def bulk_load(self, index: str, records: List[Any]) -> List[Any]:
        """Bulk-load; returns the stored records (authoritative uids)."""
        response = self.call(
            "bulk_load", index=index, records=P.records_to_wire(list(records))
        )
        return [P.record_from_dict(d) for d in response["records"]]

    def explain(self, index: str, q: Any) -> Dict[str, Any]:
        return self.call("explain", index=index, q=P.query_to_wire(q))["plan"]

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def metrics(self) -> Dict[str, Any]:
        """The observability export (counters, plan-cache ratio, WAL, ...)."""
        return self.call("metrics")

    def drop(self, index: str) -> Dict[str, Any]:
        return self.call("drop", index=index)

    def shutdown(self) -> Dict[str, Any]:
        """Ask the whole server to stop (graceful; the ack still arrives)."""
        return self.call("shutdown")
