"""``repro.server`` — the concurrent serving subsystem.

Layers (bottom up):

* the concurrency kernel lives in :mod:`repro.engine.session`
  (``Engine.session()`` handles over a readers-writer lock with
  write-intent upgrade, per-session I/O attribution);
* :mod:`repro.server.protocol` — the JSON-line wire codec: framed
  request/response messages, record and algebra-descriptor round-trips,
  structured error classification;
* :mod:`repro.server.core` — :class:`ReproServer`, a
  ``ThreadingTCPServer`` with a request router, per-connection
  prepared-handle leases and graceful shutdown (CLI: ``repro serve``);
* :mod:`repro.server.client` — :class:`ReproClient`, the blocking
  client the concurrent workload driver
  (:mod:`repro.workloads.concurrent`) fans out across threads.
"""

from repro.server.client import ClientResult, PreparedHandle, ReproClient, ServerError
from repro.server.core import JsonLineServer, ReproServer
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ShardUnavailableError,
    StaleHandleError,
    decode_message,
    encode_message,
    query_from_wire,
    query_to_wire,
    record_from_dict,
    record_to_dict,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ClientResult",
    "JsonLineServer",
    "PreparedHandle",
    "ProtocolError",
    "ReproClient",
    "ReproServer",
    "ServerError",
    "ShardUnavailableError",
    "StaleHandleError",
    "decode_message",
    "encode_message",
    "query_from_wire",
    "query_to_wire",
    "record_from_dict",
    "record_to_dict",
]
