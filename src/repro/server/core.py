"""``ReproServer`` — the threaded TCP server over one shared engine.

Each client connection gets its own handler thread, its own
:class:`~repro.engine.session.EngineSession` (so its requests run under
the engine's readers-writer lock and its I/O is attributed per session),
and its own **prepared-handle registry**: ``prepare`` leases an integer
handle valid on that connection only; ``run`` executes it; a handle whose
underlying index was dropped or re-created surfaces the engine's
invalidation error as a structured ``stale_handle`` response instead of
tearing the connection down.

Consistency model served to clients: every request is one atomic turn —
queries drain inside a shared read turn (many clients in parallel),
writes take exclusive turns, and a reader therefore always sees the
record set as it stood between two write turns, never a half-applied
write.  See :mod:`repro.engine.session`.

The server itself is transport only: it routes decoded messages to the
session surface and serializes the answers.  Run one with::

    python -m repro serve --port 7411 --n 10000

or embed it (the tests do)::

    server = ReproServer(engine)
    server.start()                    # background thread
    ... ReproClient(*server.address) ...
    server.close()
"""

from __future__ import annotations

import itertools
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from repro.server import protocol as P


class _ShutdownRequested(Exception):
    """Internal: a client asked the whole server to stop."""


class ReproServer:
    """A concurrent JSON-line server over one :class:`~repro.engine.Engine`.

    Parameters
    ----------
    engine:
        The shared engine.  The server does not own it unless
        ``close_engine`` — callers that hand over a persistent engine
        usually want the server's shutdown to checkpoint-and-close it.
    host / port:
        Bind address; port ``0`` picks a free port (see :attr:`address`).
    close_engine:
        When true, :meth:`close` also calls ``engine.close()``.
    """

    def __init__(
        self,
        engine: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        close_engine: bool = False,
    ) -> None:
        self.engine = engine
        self.close_engine = close_engine
        outer = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thread body
                outer._serve_connection(self)

        class _TCP(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._tcp = _TCP((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        #: whether serve_forever ran (shutdown on a never-served TCPServer
        #: would wait forever on its is-shut-down event)
        self._served = False
        #: live sessions by id (what the ``stats`` command reports)
        self._sessions: Dict[int, Any] = {}
        self._sessions_lock = threading.Lock()
        self._connections = itertools.count(1)
        #: aggregate of departed sessions, so ``stats`` accounts for the
        #: whole serving history, not just currently-open connections
        self._retired = {"sessions": 0, "requests": 0, "ios": 0}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` to the real one."""
        return self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking; what the CLI calls)."""
        self._served = True
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "ReproServer":
        """Serve from a daemon background thread (embedding / tests)."""
        if self._thread is None:
            self._served = True  # the thread enters serve_forever
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-server", daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting and unwind ``serve_forever`` (graceful)."""
        if self._served:
            self._tcp.shutdown()

    def close(self) -> None:
        """Shut down, release the socket, optionally close the engine."""
        if self._closed:
            return
        self._closed = True
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._tcp.server_close()
        if self.close_engine:
            self.engine.close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # one connection
    # ------------------------------------------------------------------ #
    def _serve_connection(self, handler: socketserver.StreamRequestHandler) -> None:
        session = self.engine.session()
        leases: Dict[int, Any] = {}
        lease_ids = itertools.count(1)
        with self._sessions_lock:
            self._sessions[session.session_id] = session
        try:
            for line in handler.rfile:
                if not line.strip():
                    continue
                request_id = None
                try:
                    message = P.decode_message(line)
                    request_id = message.get("id")
                    response = self._dispatch(session, leases, lease_ids, message)
                except _ShutdownRequested:
                    handler.wfile.write(
                        P.encode_message(P.ok_response(request_id, stopping=True))
                    )
                    handler.wfile.flush()
                    # unwind serve_forever from outside its own loop thread
                    threading.Thread(target=self.shutdown, daemon=True).start()
                    return
                except Exception as exc:  # noqa: BLE001 - fault barrier
                    response = P.error_response(request_id, exc)
                handler.wfile.write(P.encode_message(response))
                handler.wfile.flush()
        except (ConnectionError, BrokenPipeError, OSError):
            pass  # client went away mid-write; the session just ends
        finally:
            with self._sessions_lock:
                self._sessions.pop(session.session_id, None)
                self._retired["sessions"] += 1
                self._retired["requests"] += session.requests
                self._retired["ios"] += session.stats.total

    # ------------------------------------------------------------------ #
    # the request router
    # ------------------------------------------------------------------ #
    def _dispatch(
        self,
        session: Any,
        leases: Dict[int, Any],
        lease_ids: Any,
        message: Dict[str, Any],
    ) -> Dict[str, Any]:
        cmd = message.get("cmd")
        request_id = message.get("id")
        handler = getattr(self, f"_cmd_{cmd}", None) if isinstance(cmd, str) else None
        if handler is None:
            raise P.ProtocolError(
                f"unknown command {cmd!r}; know {sorted(P.COMMANDS)}"
            )
        return handler(session, leases, lease_ids, request_id, message)

    @staticmethod
    def _result_payload(res: Any, *, with_records: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ios": res.ios,
            "stats": res.stats.as_dict(),
        }
        if with_records:
            out["records"] = P.records_to_wire(res.records)
            out["count"] = len(res.records)
        if res.bound is not None:
            out["bound"] = res.bound
        return out

    # -- control --------------------------------------------------------- #
    def _cmd_ping(self, session, leases, lease_ids, request_id, message):
        return P.ok_response(
            request_id, pong=True, version=P.PROTOCOL_VERSION,
            session=session.session_id,
        )

    def _cmd_shutdown(self, session, leases, lease_ids, request_id, message):
        raise _ShutdownRequested

    # -- namespace ------------------------------------------------------- #
    def _cmd_create(self, session, leases, lease_ids, request_id, message):
        name = _required(message, "index")
        kind = message.get("kind", "collection")
        records = P.records_from_wire(message.get("records", []), fresh_uid=True)
        dynamic = bool(message.get("dynamic", True))
        if kind == "collection":
            res = session.create_collection(name, records, dynamic=dynamic)
        elif kind == "interval":
            res = session.create_interval_index(name, records, dynamic=dynamic)
        else:
            raise P.ProtocolError(
                f"unknown index kind {kind!r}; know ['collection', 'interval']"
            )
        return P.ok_response(
            request_id, index=name, kind=kind, loaded=len(records), ios=res.ios
        )

    def _cmd_drop(self, session, leases, lease_ids, request_id, message):
        name = _required(message, "index")
        res = session.drop_index(name)
        return P.ok_response(request_id, dropped=name, ios=res.ios)

    # -- reads ----------------------------------------------------------- #
    def _cmd_query(self, session, leases, lease_ids, request_id, message):
        name = _required(message, "index")
        q = P.query_from_wire(_required(message, "q"))
        res = session.query(name, q)
        return P.ok_response(request_id, **self._result_payload(res))

    def _cmd_explain(self, session, leases, lease_ids, request_id, message):
        name = _required(message, "index")
        q = P.query_from_wire(_required(message, "q"))
        plan = session.explain(name, q)
        return P.ok_response(
            request_id,
            plan={
                "kind": plan.kind,
                "index": plan.index,
                "bound": plan.bound.formula,
                "predicted": plan.predicted(0),
                "describe": plan.describe(),
            },
        )

    def _cmd_prepare(self, session, leases, lease_ids, request_id, message):
        name = _required(message, "index")
        q = P.query_from_wire(_required(message, "q"))
        prepared = session.prepare(name, q)
        handle = next(lease_ids)
        leases[handle] = prepared
        return P.ok_response(
            request_id, handle=handle, index=name, params=prepared.params
        )

    def _cmd_run(self, session, leases, lease_ids, request_id, message):
        handle = _required(message, "handle")
        prepared = leases.get(handle)
        if prepared is None:
            raise P.StaleHandleError(
                f"no prepared handle {handle!r} on this connection; "
                "handles are leased per connection by 'prepare'"
            )
        params = message.get("params", {})
        if not isinstance(params, dict):
            raise P.ProtocolError("'params' must be an object of name -> value")
        try:
            res = session.run(prepared, **params)
        except (KeyError, RuntimeError) as exc:
            message = exc.args[0] if exc.args and isinstance(exc.args[0], str) else ""
            # only the prepared-query liveness checks kill a lease: the
            # engine's "no index named ..." KeyError (dropped) and the
            # identity check's "... call Engine.prepare again" RuntimeError
            # (name re-bound).  Anything else — bad bindings, execution
            # errors — propagates with its own classification and leaves
            # the lease alive.
            stale = (
                isinstance(exc, KeyError) and "no index named" in message
            ) or (
                isinstance(exc, RuntimeError) and "prepare" in message
            )
            if not stale:
                raise
            leases.pop(handle, None)
            raise P.StaleHandleError(
                f"prepared handle {handle} is stale: " + (message or repr(exc))
            ) from exc
        payload = self._result_payload(res)
        if res.from_cache is not None:
            payload["from_cache"] = res.from_cache
        return P.ok_response(request_id, **payload)

    # -- writes ---------------------------------------------------------- #
    def _cmd_insert(self, session, leases, lease_ids, request_id, message):
        name = _required(message, "index")
        record = P.record_from_dict(_required(message, "record"), fresh_uid=True)
        res = session.insert(name, record)
        return P.ok_response(
            request_id, record=P.record_to_dict(record), ios=res.ios
        )

    def _cmd_delete(self, session, leases, lease_ids, request_id, message):
        name = _required(message, "index")
        if "record" in message:
            record = P.record_from_dict(message["record"])
            res = session.delete(name, record)
            removed = 1 if res.records and res.records[0] else 0
            return P.ok_response(request_id, removed=removed, ios=res.ios)
        if "q" in message:
            q = P.query_from_wire(message["q"])
            res = session.delete_matching(name, q, limit=message.get("limit"))
            return P.ok_response(
                request_id,
                removed=len(res.records),
                records=P.records_to_wire(res.records),
                ios=res.ios,
            )
        raise P.ProtocolError("'delete' takes a 'record' or a 'q' selector")

    def _cmd_bulk_load(self, session, leases, lease_ids, request_id, message):
        name = _required(message, "index")
        records = P.records_from_wire(_required(message, "records"), fresh_uid=True)
        res = session.bulk_load(name, records)
        return P.ok_response(
            request_id,
            loaded=len(records),
            records=P.records_to_wire(records),
            ios=res.ios,
        )

    # -- accounting ------------------------------------------------------ #
    def _cmd_stats(self, session, leases, lease_ids, request_id, message):
        with self._sessions_lock:
            per_session = {
                str(sid): {
                    "requests": s.requests,
                    **s.io_snapshot().as_dict(),
                }
                for sid, s in sorted(self._sessions.items())
            }
            retired = dict(self._retired)
        return P.ok_response(
            request_id,
            retired=retired,
            session={
                "id": session.session_id,
                "requests": session.requests,
                **session.io_snapshot().as_dict(),
            },
            sessions=per_session,
            engine={
                "block_size": self.engine.block_size,
                "indexes": self.engine.names(),
                "blocks": self.engine.block_count(),
                **self.engine.io_stats().snapshot().as_dict(),
            },
            epochs=self.engine.epochs.as_dict(),
            wal=(None if self.engine.wal is None else self.engine.wal.as_dict()),
        )


def _required(message: Dict[str, Any], key: str) -> Any:
    try:
        return message[key]
    except KeyError:
        raise P.ProtocolError(
            f"command {message.get('cmd')!r} requires {key!r}"
        ) from None
