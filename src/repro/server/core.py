"""``ReproServer`` — the threaded TCP server over one shared engine.

Each client connection gets its own handler thread, its own
:class:`~repro.engine.session.EngineSession` (so its requests run under
the engine's readers-writer lock and its I/O is attributed per session),
and its own **prepared-handle registry**: ``prepare`` leases an integer
handle valid on that connection only; ``run`` executes it; a handle whose
underlying index was dropped or re-created surfaces the engine's
invalidation error as a structured ``stale_handle`` response instead of
tearing the connection down.

Consistency model served to clients: every request is one atomic turn —
queries drain inside a shared read turn (many clients in parallel),
writes take exclusive turns, and a reader therefore always sees the
record set as it stood between two write turns, never a half-applied
write.  See :mod:`repro.engine.session`.

The transport itself — the JSON-line framing, the per-connection loop,
the fault barrier, graceful shutdown — lives in :class:`JsonLineServer`,
which the cluster frontend (:mod:`repro.cluster.router`) reuses to speak
the identical protocol over N shards.  Run a single server with::

    python -m repro serve --port 7411 --n 10000

or embed it (the tests do)::

    server = ReproServer(engine)
    server.start()                    # background thread
    ... ReproClient(*server.address) ...
    server.close()
"""

from __future__ import annotations

import itertools
import socketserver
import threading
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from repro.obs.slowlog import SLOWLOG
from repro.server import protocol as P


class _ShutdownRequested(Exception):
    """Internal: a client asked the whole server to stop."""


class JsonLineServer:
    """The protocol transport: a threaded TCP server of JSON-line requests.

    Subclasses implement the *meaning* of messages by overriding three
    hooks — :meth:`_open_connection` (per-connection state),
    :meth:`_dispatch_message` (one request → one response dict) and
    :meth:`_close_connection` — while this base owns the line framing,
    the per-connection fault barrier (any exception becomes a structured
    error response, never a dropped connection), and the graceful
    shutdown dance (a handler raising :class:`_ShutdownRequested` acks
    the request, then unwinds ``serve_forever`` from a side thread).
    """

    #: name of the background serving thread (subclasses override)
    thread_name = "repro-server"

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        outer = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # pragma: no cover - thread body
                outer._serve_connection(self)

        class _TCP(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True
            # a fleet of closed-loop clients (or a router's connection
            # pools) dials in bursts; the default backlog of 5 turns the
            # excess into refused connections and retry backoff
            request_queue_size = 64

        self._tcp = _TCP((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        #: whether serve_forever ran (shutdown on a never-served TCPServer
        #: would wait forever on its is-shut-down event)
        self._served = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` to the real one."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocking; what the CLI calls).

        If :meth:`start` already runs the loop from its background
        thread, this *waits* on that thread instead of entering a second
        ``socketserver`` loop — two concurrent loops race on shutdown
        (the first to wake clears the shutdown flag in its ``finally``
        and strands the other in its poll loop forever).  The wait polls
        so signal handlers (SIGTERM → KeyboardInterrupt) still fire.
        """
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            while thread.is_alive():
                thread.join(timeout=0.2)
            return
        self._served = True
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "JsonLineServer":
        """Serve from a daemon background thread (embedding / tests)."""
        if self._thread is None:
            self._served = True  # the thread enters serve_forever
            self._thread = threading.Thread(
                target=self.serve_forever, name=self.thread_name, daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting and unwind ``serve_forever`` (graceful)."""
        if self._served:
            self._tcp.shutdown()

    def close(self) -> None:
        """Shut down, release the socket, then run :meth:`_on_close`."""
        if self._closed:
            return
        self._closed = True
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._tcp.server_close()
        self._on_close()

    def __enter__(self) -> "JsonLineServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #
    def _open_connection(self) -> Any:
        """Per-connection state handed to every dispatch on that socket."""
        return None

    def _close_connection(self, conn: Any) -> None:
        """The connection ended (client gone or shutdown)."""

    def _dispatch_message(self, conn: Any, message: Dict[str, Any]) -> Dict[str, Any]:
        """One decoded request → one response dict (or raise)."""
        raise NotImplementedError

    def _on_close(self) -> None:
        """Extra teardown after the socket is released (engine, shards...)."""

    # ------------------------------------------------------------------ #
    # one connection
    # ------------------------------------------------------------------ #
    def _serve_connection(self, handler: socketserver.StreamRequestHandler) -> None:
        conn = self._open_connection()
        try:
            for line in handler.rfile:
                if not line.strip():
                    continue
                request_id = None
                try:
                    message = P.decode_message(line)
                    request_id = message.get("id")
                    response = self._dispatch_message(conn, message)
                except _ShutdownRequested:
                    handler.wfile.write(
                        P.encode_message(P.ok_response(request_id, stopping=True))
                    )
                    handler.wfile.flush()
                    # unwind serve_forever from outside its own loop thread
                    threading.Thread(target=self.shutdown, daemon=True).start()
                    return
                except Exception as exc:  # noqa: BLE001 - fault barrier
                    response = P.error_response(request_id, exc)
                handler.wfile.write(P.encode_message(response))
                handler.wfile.flush()
        except (ConnectionError, BrokenPipeError, OSError):
            pass  # client went away mid-write; the session just ends
        finally:
            self._close_connection(conn)


class _Connection:
    """One client connection's engine-side state (session + leases)."""

    __slots__ = ("session", "leases", "lease_ids")

    def __init__(self, session: Any) -> None:
        self.session = session
        self.leases: Dict[int, Any] = {}
        self.lease_ids: Iterator[int] = itertools.count(1)


class ReproServer(JsonLineServer):
    """A concurrent JSON-line server over one :class:`~repro.engine.Engine`.

    Parameters
    ----------
    engine:
        The shared engine.  The server does not own it unless
        ``close_engine`` — callers that hand over a persistent engine
        usually want the server's shutdown to checkpoint-and-close it.
    host / port:
        Bind address; port ``0`` picks a free port (see :attr:`address`).
    close_engine:
        When true, :meth:`close` also calls ``engine.close()``.
    """

    def __init__(
        self,
        engine: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        close_engine: bool = False,
    ) -> None:
        super().__init__(host, port)
        self.engine = engine
        self.close_engine = close_engine
        #: live sessions by id (what the ``stats`` command reports)
        self._sessions: Dict[int, Any] = {}
        self._sessions_lock = threading.Lock()
        self._connections: Iterator[int] = itertools.count(1)
        #: aggregate of departed sessions, so ``stats`` accounts for the
        #: whole serving history, not just currently-open connections
        self._retired: Dict[str, int] = {"sessions": 0, "requests": 0, "ios": 0}
        self._started_monotonic = time.monotonic()

    def uptime_s(self) -> float:
        """Seconds since this server object was constructed."""
        return round(time.monotonic() - self._started_monotonic, 3)

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def _on_close(self) -> None:
        if self.close_engine:
            self.engine.close()

    # ------------------------------------------------------------------ #
    # connection state
    # ------------------------------------------------------------------ #
    def _open_connection(self) -> _Connection:
        conn = _Connection(self.engine.session())
        with self._sessions_lock:
            self._sessions[conn.session.session_id] = conn.session
        return conn

    def _close_connection(self, conn: _Connection) -> None:
        session = conn.session
        with self._sessions_lock:
            self._sessions.pop(session.session_id, None)
            self._retired["sessions"] += 1
            self._retired["requests"] += session.requests
            self._retired["ios"] += session.stats.total

    # ------------------------------------------------------------------ #
    # the request router
    # ------------------------------------------------------------------ #
    def _dispatch_message(self, conn: _Connection, message: Dict[str, Any]) -> Dict[str, Any]:
        return self._dispatch(conn.session, conn.leases, conn.lease_ids, message)

    def _dispatch(
        self,
        session: Any,
        leases: Dict[int, Any],
        lease_ids: Iterator[int],
        message: Dict[str, Any],
    ) -> Dict[str, Any]:
        cmd = message.get("cmd")
        request_id = message.get("id")
        handler = getattr(self, f"_cmd_{cmd}", None) if isinstance(cmd, str) else None
        if handler is None:
            raise P.ProtocolError(
                f"unknown command {cmd!r}; know {sorted(P.COMMANDS)}"
            )
        obs_metrics.REGISTRY.counter(f"server.ops.{cmd}").inc()
        t0 = time.perf_counter()
        response: Dict[str, Any] = handler(
            session, leases, lease_ids, request_id, message
        )
        obs_metrics.REGISTRY.histogram(f"server.latency_ms.{cmd}").observe(
            (time.perf_counter() - t0) * 1e3
        )
        return response

    @staticmethod
    def _result_payload(res: Any, *, with_records: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ios": res.ios,
            "stats": res.stats.as_dict(),
        }
        if with_records:
            out["records"] = P.records_to_wire(res.records)
            out["count"] = len(res.records)
        if res.bound is not None:
            out["bound"] = res.bound
        return out

    @staticmethod
    def _wire_records(message: Dict[str, Any], data: Any) -> Any:
        """Decode wire records, minting fresh uids unless ``keep_uids``.

        A router upstream mints authoritative uids itself and asks the
        shard to honour them (``keep_uids: true``); the shard then
        advances its own counters past the wire uids so nothing this
        process ever mints can collide with a router-named record.
        """
        from repro.engine.core import _advance_uid_counters

        keep = bool(message.get("keep_uids"))
        records = P.records_from_wire(data, fresh_uid=not keep)
        if keep:
            _advance_uid_counters(records)
        return records

    # -- control --------------------------------------------------------- #
    def _cmd_ping(self, session: Any, leases: Dict[int, Any],
                 lease_ids: Iterator[int], request_id: Any,
                 message: Dict[str, Any]) -> Dict[str, Any]:
        return P.ok_response(
            request_id, pong=True, version=P.PROTOCOL_VERSION,
            session=session.session_id,
        )

    def _cmd_shutdown(self, session: Any, leases: Dict[int, Any],
                     lease_ids: Iterator[int], request_id: Any,
                     message: Dict[str, Any]) -> Dict[str, Any]:
        raise _ShutdownRequested

    # -- namespace ------------------------------------------------------- #
    def _cmd_create(self, session: Any, leases: Dict[int, Any],
                   lease_ids: Iterator[int], request_id: Any,
                   message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        kind = message.get("kind", "collection")
        records = self._wire_records(message, message.get("records", []))
        dynamic = bool(message.get("dynamic", True))
        if kind == "collection":
            res = session.create_collection(name, records, dynamic=dynamic)
        elif kind == "interval":
            res = session.create_interval_index(name, records, dynamic=dynamic)
        else:
            raise P.ProtocolError(
                f"unknown index kind {kind!r}; know ['collection', 'interval']"
            )
        return P.ok_response(
            request_id, index=name, kind=kind, loaded=len(records), ios=res.ios
        )

    def _cmd_drop(self, session: Any, leases: Dict[int, Any],
                 lease_ids: Iterator[int], request_id: Any,
                 message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        res = session.drop_index(name)
        return P.ok_response(request_id, dropped=name, ios=res.ios)

    # -- reads ----------------------------------------------------------- #
    def _cmd_query(self, session: Any, leases: Dict[int, Any],
                  lease_ids: Iterator[int], request_id: Any,
                  message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        q = P.query_from_wire(_required(message, "q"))
        res = session.query(name, q)
        return P.ok_response(request_id, **self._result_payload(res))

    def _cmd_explain(self, session: Any, leases: Dict[int, Any],
                    lease_ids: Iterator[int], request_id: Any,
                    message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        q = P.query_from_wire(_required(message, "q"))
        plan = session.explain(name, q)
        return P.ok_response(
            request_id,
            plan={
                "kind": plan.kind,
                "index": plan.index,
                "bound": plan.bound.formula,
                "predicted": plan.predicted(0),
                "describe": plan.describe(),
            },
        )

    def _cmd_prepare(self, session: Any, leases: Dict[int, Any],
                    lease_ids: Iterator[int], request_id: Any,
                    message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        q = P.query_from_wire(_required(message, "q"))
        prepared = session.prepare(name, q)
        handle = next(lease_ids)
        leases[handle] = prepared
        return P.ok_response(
            request_id, handle=handle, index=name, params=prepared.params
        )

    def _cmd_run(self, session: Any, leases: Dict[int, Any],
                lease_ids: Iterator[int], request_id: Any,
                message: Dict[str, Any]) -> Dict[str, Any]:
        handle = _required(message, "handle")
        prepared = leases.get(handle)
        if prepared is None:
            raise P.StaleHandleError(
                f"no prepared handle {handle!r} on this connection; "
                "handles are leased per connection by 'prepare'"
            )
        params = message.get("params", {})
        if not isinstance(params, dict):
            raise P.ProtocolError("'params' must be an object of name -> value")
        try:
            res = session.run(prepared, **params)
        except (KeyError, RuntimeError) as exc:
            detail = exc.args[0] if exc.args and isinstance(exc.args[0], str) else ""
            # only the prepared-query liveness checks kill a lease: the
            # engine's "no index named ..." KeyError (dropped) and the
            # identity check's "... call Engine.prepare again" RuntimeError
            # (name re-bound).  Anything else — bad bindings, execution
            # errors — propagates with its own classification and leaves
            # the lease alive.
            stale = (
                isinstance(exc, KeyError) and "no index named" in detail
            ) or (
                isinstance(exc, RuntimeError) and "prepare" in detail
            )
            if not stale:
                raise
            leases.pop(handle, None)
            raise P.StaleHandleError(
                f"prepared handle {handle} is stale: " + (detail or repr(exc))
            ) from exc
        payload = self._result_payload(res)
        if res.from_cache is not None:
            payload["from_cache"] = res.from_cache
        return P.ok_response(request_id, **payload)

    # -- writes ---------------------------------------------------------- #
    def _cmd_insert(self, session: Any, leases: Dict[int, Any],
                   lease_ids: Iterator[int], request_id: Any,
                   message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        [record] = self._wire_records(message, [_required(message, "record")])
        res = session.insert(name, record)
        return P.ok_response(
            request_id, record=P.record_to_dict(record), ios=res.ios
        )

    def _cmd_delete(self, session: Any, leases: Dict[int, Any],
                   lease_ids: Iterator[int], request_id: Any,
                   message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        if "record" in message:
            record = P.record_from_dict(message["record"])
            res = session.delete(name, record)
            removed = 1 if res.records and res.records[0] else 0
            return P.ok_response(request_id, removed=removed, ios=res.ios)
        if "q" in message:
            q = P.query_from_wire(message["q"])
            res = session.delete_matching(name, q, limit=message.get("limit"))
            return P.ok_response(
                request_id,
                removed=len(res.records),
                records=P.records_to_wire(res.records),
                ios=res.ios,
            )
        raise P.ProtocolError("'delete' takes a 'record' or a 'q' selector")

    def _cmd_bulk_load(self, session: Any, leases: Dict[int, Any],
                      lease_ids: Iterator[int], request_id: Any,
                      message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        records = self._wire_records(message, _required(message, "records"))
        res = session.bulk_load(name, records)
        return P.ok_response(
            request_id,
            loaded=len(records),
            records=P.records_to_wire(records),
            ios=res.ios,
        )

    # -- accounting ------------------------------------------------------ #
    def _cmd_stats(self, session: Any, leases: Dict[int, Any],
                  lease_ids: Iterator[int], request_id: Any,
                  message: Dict[str, Any]) -> Dict[str, Any]:
        with self._sessions_lock:
            per_session = {
                str(sid): {
                    "requests": s.requests,
                    **s.io_snapshot().as_dict(),
                }
                for sid, s in sorted(self._sessions.items())
            }
            retired = dict(self._retired)
        return P.ok_response(
            request_id,
            retired=retired,
            session={
                "id": session.session_id,
                "requests": session.requests,
                **session.io_snapshot().as_dict(),
            },
            sessions=per_session,
            engine={
                "block_size": self.engine.block_size,
                "indexes": self.engine.names(),
                "blocks": self.engine.block_count(),
                "uid_horizon": self.engine.uid_horizon(),
                **self.engine.io_stats().snapshot().as_dict(),
            },
            epochs=self.engine.epochs.as_dict(),
            wal=(None if self.engine.wal is None else self.engine.wal.as_dict()),
            uptime_s=self.uptime_s(),
        )

    def _cmd_metrics(self, session: Any, leases: Dict[int, Any],
                    lease_ids: Iterator[int], request_id: Any,
                    message: Dict[str, Any]) -> Dict[str, Any]:
        """The observability export: everything ``repro top`` needs in one
        round-trip — the metrics registry snapshot, plan-cache hit ratio,
        WAL group-absorption, epoch-pin age, tracer/slow-query state."""
        epochs = self.engine.epochs.as_dict()
        epochs["pin_age_s"] = self.engine.epochs.pin_age_s()
        return P.ok_response(
            request_id,
            uptime_s=self.uptime_s(),
            metrics=obs_metrics.REGISTRY.snapshot(),
            plan_cache=self.engine.plan_cache_info(),
            wal=(None if self.engine.wal is None else self.engine.wal.as_dict()),
            epochs=epochs,
            tracer=obs_tracer.TRACER.stats_dict(),
            slowlog=SLOWLOG.stats_dict(),
        )


def _required(message: Dict[str, Any], key: str) -> Any:
    try:
        return message[key]
    except KeyError:
        raise P.ProtocolError(
            f"command {message.get('cmd')!r} requires {key!r}"
        ) from None
