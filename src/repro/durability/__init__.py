"""Durability: write-ahead logging, crash recovery, MVCC snapshot epochs.

Three pieces, wired together by the :class:`~repro.engine.Engine`:

* :mod:`repro.durability.wal` — the append-only, checksummed redo log
  with group-commit ``fsync`` (a write is acknowledged only after its
  record is durable);
* :mod:`repro.durability.recovery` — replay of the WAL tail past the
  last checkpoint on ``Engine.open`` / ``Engine.attach_wal``;
* :mod:`repro.durability.mvcc` — the epoch clock that gives reader
  sessions pinned snapshots while writers commit concurrently.
"""

from repro.durability.mvcc import EpochManager
from repro.durability.recovery import apply_op, replay_wal
from repro.durability.wal import WalRecord, WriteAheadLog, read_log

__all__ = [
    "EpochManager",
    "WalRecord",
    "WriteAheadLog",
    "apply_op",
    "read_log",
    "replay_wal",
]
