"""MVCC snapshot epochs: the clock readers pin and writers advance.

Every committed write batch advances a global **epoch**.  The
:class:`EpochManager` is the tiny kernel underneath the engine's
concurrency story:

* A **writer** calls :meth:`begin` inside the engine's write mutex (epochs
  are allocated in commit order), applies its changes, makes its WAL
  record durable, and then :meth:`publish`\\ es the epoch.  Publication is
  *ordered*: epoch ``W`` waits until ``W-1`` is published, so the visible
  history is a prefix — a reader can never observe commit ``W`` without
  ``W-1``.  Because the fsync happens between apply and publish (outside
  the mutex), concurrent committers overlap their durability barriers —
  that is what makes group commit effective.
* A **reader** enters :meth:`pinned`, which hands it the latest published
  epoch ``E`` and registers the pin.  Everything the reader streams is
  filtered against ``E``: records created after ``E`` are invisible,
  records deleted at or before ``E`` are gone, records deleted *after*
  ``E`` are still visible.  Readers therefore never wait for writers on
  other indexes at all, and on their own index only for the short
  structural latch — not for the fsync.
* **Version GC**: a deleted record's physical index entries can only be
  reclaimed once no pinned reader might still need them.
  :meth:`safe_epoch` is the horizon — ``min(pinned) - 1`` while readers
  are pinned, the current epoch otherwise — computed atomically with the
  pin registry, so a concurrent pin either blocks the purge or is new
  enough not to need the record.

The manager also tracks the **write epoch** of the commit currently
applying on this thread (thread-local), which is how
:class:`~repro.engine.collection.Collection` tags record versions without
threading an epoch argument through every write hook.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class EpochManager:
    """The global epoch clock: ordered publication, reader pins, GC horizon."""

    def __init__(self, start: int = 0) -> None:
        self._cond = threading.Condition()
        self._current = start   # highest *published* epoch
        self._next = start      # highest *begun* epoch
        self._pins: Dict[int, int] = {}   # epoch -> pinned reader count
        #: epoch -> monotonic time its earliest live pin registered (for
        #: the epoch-pin age gauge: an old pin is what holds back GC)
        self._pin_started: Dict[int, float] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # the writer side
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> int:
        """The latest published epoch (what a new reader pins)."""
        return self._current

    def begin(self) -> int:
        """Allocate the next epoch (call inside the engine's write mutex)."""
        with self._cond:
            self._next += 1
            return self._next

    def publish(self, epoch: int) -> None:
        """Make ``epoch`` visible; waits until every predecessor published.

        A begun epoch **must** be published exactly once, success or
        failure (a failed commit publishes an empty epoch) — otherwise
        every later commit waits forever.  The engine guarantees this with
        a ``finally``.
        """
        with self._cond:
            while self._current != epoch - 1:
                self._cond.wait()
            self._current = epoch
            self._cond.notify_all()

    def advance_to(self, epoch: int) -> None:
        """Jump the clock forward (recovery aligning to recorded epochs)."""
        with self._cond:
            if epoch > self._current:
                self._current = epoch
            if self._current > self._next:
                self._next = self._current
            self._cond.notify_all()

    def quiesce(self) -> None:
        """Wait until every begun epoch is published (checkpoint barrier)."""
        with self._cond:
            while self._current != self._next:
                self._cond.wait()

    # -- the applying commit's epoch, visible to write hooks ------------- #
    def set_write_epoch(self, epoch: int) -> None:
        self._local.write_epoch = epoch

    def clear_write_epoch(self) -> None:
        self._local.write_epoch = None

    def write_epoch(self) -> Optional[int]:
        """The epoch of the commit applying on this thread, or ``None``."""
        return getattr(self._local, "write_epoch", None)

    # ------------------------------------------------------------------ #
    # the reader side
    # ------------------------------------------------------------------ #
    @contextmanager
    def pinned(self) -> Iterator[int]:
        """Pin the latest published epoch for the scope; yields it.

        While pinned, version GC keeps every record version the epoch can
        see (see :meth:`safe_epoch`).  Pins nest freely; each scope
        re-pins the then-current epoch.
        """
        with self._cond:
            epoch = self._current
            self._pins[epoch] = self._pins.get(epoch, 0) + 1
            self._pin_started.setdefault(epoch, time.monotonic())
        try:
            yield epoch
        finally:
            with self._cond:
                left = self._pins.get(epoch, 0) - 1
                if left > 0:
                    self._pins[epoch] = left
                else:
                    self._pins.pop(epoch, None)
                    self._pin_started.pop(epoch, None)
                self._cond.notify_all()

    def pinned_count(self) -> int:
        """How many reader pins are currently registered."""
        with self._cond:
            return sum(self._pins.values())

    def oldest_pinned(self) -> Optional[int]:
        with self._cond:
            return min(self._pins) if self._pins else None

    def pin_age_s(self) -> Optional[float]:
        """Seconds the oldest live reader pin has been held (``None``: no pins).

        The gauge the ``metrics`` export serves: a growing age means some
        reader is holding back the version-GC horizon.
        """
        with self._cond:
            if not self._pin_started:
                return None
            return round(time.monotonic() - min(self._pin_started.values()), 6)

    # ------------------------------------------------------------------ #
    # the GC horizon
    # ------------------------------------------------------------------ #
    def safe_epoch(self) -> int:
        """Versions with ``deleted_epoch <= safe_epoch()`` may be purged.

        Atomic with the pin registry: a reader pinning concurrently either
        registered first (and lowers the horizon) or pins an epoch at
        least as new as the one this horizon was computed from — in which
        case every purgeable version was already invisible to it.
        """
        with self._cond:
            if self._pins:
                return min(self._pins) - 1
            return self._current

    def as_dict(self) -> Dict[str, Optional[int]]:
        """Clock state as plain data (the server's ``stats`` response)."""
        with self._cond:
            return {
                "current": self._current,
                "begun": self._next,
                "pinned": sum(self._pins.values()),
                "oldest_pinned": min(self._pins) if self._pins else None,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EpochManager(current={self._current}, begun={self._next}, "
            f"pins={self.pinned_count()})"
        )
