"""The write-ahead log: durable commit records with group commit.

Layout
------
The log is a flat file of self-delimiting records::

    [4-byte little-endian payload length][4-byte CRC32][pickled payload]

where the payload is the pair ``(epoch, op)`` — the commit's global epoch
(see :class:`~repro.durability.mvcc.EpochManager`) and the logical
operation tuple the :class:`~repro.engine.Engine` replays on recovery
(``("insert", name, args)``, ``("bulk", name, records)``, ``("create",
entry, records)``, ...).  Records are framed *and* checksummed, so a torn
tail — the expected artifact of crashing mid-append — is detected, not
misparsed: iteration stops at the first record whose header is short or
whose checksum fails, and :meth:`WriteAheadLog.__init__` truncates the
file back to the last intact record before appending anything new.

Commit protocol (what the engine does)
--------------------------------------
1. :meth:`append` the commit's record — buffered, cheap, returns the byte
   offset the log must be durable *up to* for this commit.
2. :meth:`sync_to` that offset — the durability barrier.  This is where
   **group commit** happens: one ``fsync`` covers every record appended
   before it, so when N threads commit concurrently, the first one into
   the sync lock pays the barrier and the rest find their offset already
   durable and return without syncing.  The amortization is observable:
   ``fsyncs`` (counted into the shared :class:`~repro.io.counters.IOStats`)
   stays below ``commits`` under concurrency.

An acknowledged commit is therefore exactly one whose record survived an
``fsync``; everything after the last barrier is legitimately lost on a
crash, everything before it must replay.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
import zlib
from typing import TYPE_CHECKING, Any, Dict, Iterator, NamedTuple, Optional, Tuple

from repro.analysis import lockdep
from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.io.counters import IOStats

#: record framing: payload length + CRC32 of the payload
_HEADER = struct.Struct("<II")
#: refuse absurd lengths when scanning (a torn header can decode to anything)
_MAX_PAYLOAD = 1 << 30


class WalRecord(NamedTuple):
    """One decoded log record (what :meth:`WriteAheadLog.records` yields)."""

    lsn: int            #: ordinal position in the log (0-based)
    epoch: int          #: commit epoch the operation belongs to
    op: Tuple[Any, ...]  #: the logical operation tuple
    offset: int         #: byte offset of the record header in the file
    length: int         #: total framed length (header + payload)


def _scan(raw: bytes) -> Iterator[Tuple[int, int, bytes]]:
    """Yield ``(offset, framed_length, payload)`` for every intact record.

    Stops silently at the first torn or corrupt record — that is the valid
    prefix of the log, by the crash contract.
    """
    pos, end = 0, len(raw)
    while pos + _HEADER.size <= end:
        length, crc = _HEADER.unpack_from(raw, pos)
        if length > _MAX_PAYLOAD or pos + _HEADER.size + length > end:
            return
        payload = raw[pos + _HEADER.size : pos + _HEADER.size + length]
        if zlib.crc32(payload) != crc:
            return
        yield pos, _HEADER.size + length, payload
        pos += _HEADER.size + length


def read_log(path: str) -> Iterator[WalRecord]:
    """Decode a log file read-only (``repro wal inspect``).

    Unlike constructing a :class:`WriteAheadLog`, this never truncates a
    torn tail — it just stops there — so inspection is safe on the live
    log of a running server and on a crashed process's evidence.
    """
    with open(path, "rb") as fh:
        # read-only inspection of evidence, not a modeled block I/O (no
        # engine owns this handle's counters)
        # lint: allow(uncounted-io)
        raw = fh.read()
    for lsn, (offset, length, payload) in enumerate(_scan(raw)):
        epoch, op = pickle.loads(payload)
        yield WalRecord(lsn, epoch, op, offset, length)


def bench_fragment(engine: Any) -> Dict[str, object]:
    """The WAL counter block every ``BENCH_*.json`` artifact embeds.

    Uniform across benchmarks (zeros when the engine runs without a log),
    so artifact diffing can track group-commit effectiveness release over
    release: ``commits`` / ``syncs`` / ``group_absorbed`` from the log,
    ``fsyncs`` from the backend's shared :class:`IOStats` (truncate
    barriers included — they are platter round-trips too).
    """
    wal = getattr(engine, "wal", None)
    stats = engine.io_stats()
    return {
        "commits": 0 if wal is None else wal.commits,
        "syncs": 0 if wal is None else wal.syncs,
        "group_absorbed": 0 if wal is None else wal.group_absorbed,
        "group_absorbed_ratio": None if wal is None else wal.group_absorbed_ratio,
        "fsyncs": getattr(stats, "fsyncs", 0),
    }


def bench_fragment_from_wire(
    wal: Optional[Dict[str, Any]], engine: Dict[str, Any]
) -> Dict[str, object]:
    """:func:`bench_fragment` built from a server's ``stats`` response.

    ``wal`` is the response's ``wal`` block (``None`` on a WAL-less
    server), ``engine`` its ``engine`` block (which carries ``fsyncs``
    from the backend's shared counters).
    """
    wal = wal or {}
    return {
        "commits": wal.get("commits", 0),
        "syncs": wal.get("syncs", 0),
        "group_absorbed": wal.get("group_absorbed", 0),
        "group_absorbed_ratio": wal.get("group_absorbed_ratio"),
        "fsyncs": engine.get("fsyncs", 0),
    }


class WriteAheadLog:
    """An append-only, checksummed redo log with group-commit fsync.

    Parameters
    ----------
    path:
        Log file location; created when missing.  When the file already
        holds records (a crashed process's tail), they stay readable via
        :meth:`records` and any torn suffix is truncated away on open.
    stats:
        An :class:`~repro.io.counters.IOStats` to count ``fsyncs`` into —
        pass the storage backend's counters so durability barriers show up
        next to the block I/Os in ``stats`` responses and bench reports.
    fsync:
        ``False`` disables the physical barrier (the commit protocol and
        counters behave identically) — for tests and in-memory engines
        where the log is about replay, not the platter.
    commit_latency:
        Seconds of *simulated* device round-trip charged per commit
        barrier.  Non-zero models a synchronous log device without
        command queueing — a rotational disk or a networked block store
        — where every commit pays its own round-trip, so the group-commit
        absorption fast path is disabled and barriers strictly serialize
        on the sync lock.  This is the same philosophy as
        :class:`~repro.io.disk.SimulatedDisk` counting block I/Os that
        RAM makes free: on development filesystems ``fsync`` is nearly
        instantaneous, and the benchmark legs that measure commit-pipeline
        parallelism need a device whose barrier actually takes time.
    """

    def __init__(
        self,
        path: str,
        *,
        stats: Optional["IOStats"] = None,
        fsync: bool = True,
        commit_latency: float = 0.0,
    ) -> None:
        self.path = path
        self.stats = stats
        self._fsync_enabled = fsync
        self._commit_latency = max(0.0, commit_latency)
        #: serializes appends (record order == commit order)
        self._lock = threading.Lock()
        #: serializes the durability barrier (group commit happens here)
        self._sync_lock = threading.Lock()
        self._file = open(path, "a+b")
        # the open-time recovery scan reads the log once; like the catalog
        # sidecar it is control information, outside the I/O model
        self._file.seek(0)  # lint: allow(uncounted-io)
        raw = self._file.read()  # lint: allow(uncounted-io)
        valid = 0
        records = 0
        for offset, length, _ in _scan(raw):
            valid = offset + length
            records += 1
        if valid < len(raw):
            # torn tail from a crash mid-append: cut back to the last
            # intact record so new appends extend a clean prefix
            self._file.truncate(valid)  # lint: allow(uncounted-io)
        self._appended = valid      # bytes of intact records in the file
        self._synced = valid        # bytes known durable (file was at rest)
        self._records = records
        #: cumulative counters (survive truncate(): they describe the
        #: process, not the file)
        self.commits = 0            # records appended by this process
        self.syncs = 0              # sync barriers issued (fsync if enabled)
        self.group_absorbed = 0     # commits that rode another's barrier

    # ------------------------------------------------------------------ #
    # the commit path
    # ------------------------------------------------------------------ #
    def append(self, epoch: int, op: Tuple[Any, ...]) -> int:
        """Buffer one commit record; returns the offset :meth:`sync_to` needs.

        Callers append under their own commit ordering (the engine's write
        mutex), so record order in the file equals epoch order.
        """
        payload = pickle.dumps((epoch, op), protocol=pickle.HIGHEST_PROTOCOL)
        header = _HEADER.pack(len(payload), zlib.crc32(payload))
        with self._lock:
            # buffered byte appends: the WAL charges durability *barriers*
            # (``fsyncs`` in sync_to), never buffered writes — the model
            # counts block I/Os and platter round-trips, not library calls
            self._file.write(header)  # lint: allow(uncounted-io)
            self._file.write(payload)  # lint: allow(uncounted-io)
            self._appended += len(header) + len(payload)
            self._records += 1
            self.commits += 1
            return self._appended

    def sync_to(self, offset: int) -> bool:
        """Make the log durable up to ``offset``; returns ``True`` on a
        physical barrier, ``False`` when another commit's barrier already
        covered this offset (the group-commit fast path)."""
        wait0 = time.perf_counter()
        if self._commit_latency:
            # simulated synchronous log device: no command queueing means
            # no absorption fast path — every commit serializes on the
            # barrier lock and pays its own round-trip (sleeping releases
            # the GIL, so independent logs overlap their round-trips)
            with self._sync_lock:
                obs_metrics.REGISTRY.histogram("wal.sync_wait_ms").observe(
                    (time.perf_counter() - wait0) * 1e3
                )
                lockdep.notify_blocking("wal.sync_to")
                time.sleep(self._commit_latency)
                with self._lock:
                    target = self._appended
                    self._file.flush()
                if self._fsync_enabled:
                    os.fsync(self._file.fileno())
                if self.stats is not None:
                    self.stats.count(fsyncs=1)
                if target > self._synced:
                    self._synced = target
                self.syncs += 1
                return True
        if self._synced >= offset:
            with self._lock:
                self.group_absorbed += 1
            return False
        with self._sync_lock:
            obs_metrics.REGISTRY.histogram("wal.sync_wait_ms").observe(
                (time.perf_counter() - wait0) * 1e3
            )
            if self._synced >= offset:
                with self._lock:
                    self.group_absorbed += 1
                return False
            with self._lock:
                target = self._appended
                self._file.flush()
            if self._fsync_enabled:
                # the durability barrier runs under _sync_lock alone — a
                # declared barrier lock; holding any latch here would stall
                # readers on the platter, which the witness treats as fatal
                lockdep.notify_blocking("wal.sync_to")
                os.fsync(self._file.fileno())
                if self.stats is not None:
                    self.stats.count(fsyncs=1)
            self._synced = target
            self.syncs += 1
            return True

    def truncate(self) -> None:
        """Drop every record: the checkpoint made them redundant.

        Called *after* the catalog checkpoint is durable — a crash between
        the checkpoint and this truncate replays a tail of operations the
        checkpoint already contains, which the ``durable_epoch`` filter in
        :func:`~repro.durability.recovery.replay_wal` skips.
        """
        with self._sync_lock, self._lock:
            self._file.truncate(0)
            self._file.flush()
            if self._fsync_enabled:
                # a quiesced-checkpoint barrier: the engine holds the write
                # mutex, so no append can race this fsync-under-_lock
                # lint: allow(blocking-under-mutex)
                os.fsync(self._file.fileno())
                if self.stats is not None:
                    self.stats.count(fsyncs=1)
            self._appended = 0
            self._synced = 0
            self._records = 0
            self.syncs += 1

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def records(self) -> Iterator[WalRecord]:
        """Decode every intact record, in append order.

        Reads through a private handle over a flushed view of the file, so
        inspection works while the log is live.
        """
        with self._lock:
            self._file.flush()
        with open(self.path, "rb") as fh:
            # live-log inspection through a private handle; same contract
            # as :func:`read_log` — not a modeled block I/O
            # lint: allow(uncounted-io)
            raw = fh.read()
        for lsn, (offset, length, payload) in enumerate(_scan(raw)):
            epoch, op = pickle.loads(payload)
            yield WalRecord(lsn, epoch, op, offset, length)

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def size_bytes(self) -> int:
        """Bytes of intact records currently in the file."""
        return self._appended

    @property
    def record_count(self) -> int:
        """Records currently in the file (reset by :meth:`truncate`)."""
        return self._records

    @property
    def synced_bytes(self) -> int:
        return self._synced

    @property
    def group_absorbed_ratio(self) -> Optional[float]:
        """Fraction of commits that rode another commit's barrier.

        ``None`` until the first commit — exporters can tell "no write
        traffic yet" apart from "no absorption happening".
        """
        if not self.commits:
            return None
        return round(self.group_absorbed / self.commits, 6)

    def as_dict(self) -> Dict[str, object]:
        """Log state as plain data (the server's ``stats`` response)."""
        return {
            "path": self.path,
            "size_bytes": self.size_bytes,
            "records": self.record_count,
            "commits": self.commits,
            "syncs": self.syncs,
            "group_absorbed": self.group_absorbed,
            "group_absorbed_ratio": self.group_absorbed_ratio,
        }

    def close(self) -> None:
        if not self._file.closed:
            with self._sync_lock, self._lock:
                self._file.flush()
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog({self.path!r}, records={self.record_count}, "
            f"commits={self.commits}, syncs={self.syncs})"
        )
