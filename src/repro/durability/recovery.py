"""Crash recovery: replay the WAL tail past the last checkpoint.

The engine's persistence story has two layers:

* the **checkpoint** — a full catalog serialization through the storage
  backend (``Engine.checkpoint``), stamped with the ``durable_epoch`` it
  covers and followed by a WAL truncate;
* the **WAL tail** — every commit acknowledged after that checkpoint.

``Engine.open`` restores the checkpointed catalog first, then calls
:func:`replay_wal` to re-apply the tail.  Replay is idempotent against
the crash windows that matter:

* crash *before* the checkpoint's sidecar replace: the previous
  checkpoint + the full WAL replay to the same state;
* crash *between* the checkpoint and the WAL truncate: the log still
  holds operations the checkpoint already contains — their recorded
  epochs are ``<= durable_epoch``, so the filter skips them;
* crash *during replay*: nothing was checkpointed or truncated, so the
  next recovery replays the identical prefix again.

Replay re-applies operations through the normal engine write path (same
structures, same I/O accounting, no logging — the WAL is attached only
after replay), and realigns the epoch clock to each record's logged epoch
so that a re-checkpoint after a partial recovery cannot double-apply.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from repro.durability.wal import WriteAheadLog


def _advance_uids(records: Iterable[Any]) -> None:
    # replayed records re-enter the process with their original uids; the
    # fresh-record counters must skip past them exactly as a catalog
    # restore does
    from repro.engine.core import _advance_uid_counters

    _advance_uid_counters(list(records))


def apply_op(engine: Any, op: Tuple[Any, ...]) -> None:
    """Re-apply one logged operation through the engine's write surface."""
    kind = op[0]
    if kind == "insert":
        _advance_uids(op[2])
        engine.insert(op[1], *op[2])
    elif kind == "delete":
        engine.delete(op[1], *op[2])
    elif kind == "update":
        _advance_uids([op[3]])
        engine.update(op[1], op[2], op[3])
    elif kind == "bulk":
        _advance_uids(op[2])
        engine.bulk_load(op[1], op[2])
    elif kind == "create":
        entry, records = op[1], op[2]
        _advance_uids(records)
        engine._restore(entry, records)
    elif kind == "drop":
        engine.drop_index(op[1])
    else:
        raise ValueError(f"unknown WAL operation kind {kind!r}")


def replay_wal(engine: Any, wal: WriteAheadLog, durable_epoch: int) -> int:
    """Replay every record with ``epoch > durable_epoch``; returns the count.

    Must run before the WAL is attached to the engine (so replayed
    operations are not re-logged).  The epoch clock is advanced to each
    record's logged epoch *before* applying, so the commit the replay
    performs gets the identical epoch it had in the crashed process —
    which keeps a later ``durable_epoch`` comparison exact even when the
    log has epoch gaps (failed commits publish empty epochs).
    """
    if getattr(engine, "wal", None) is not None:
        raise RuntimeError("detach the WAL before replaying into the engine")
    replayed = 0
    for record in wal.records():
        if record.epoch <= durable_epoch:
            continue
        engine._epochs.advance_to(record.epoch - 1)
        apply_op(engine, record.op)
        replayed += 1
    return replayed
