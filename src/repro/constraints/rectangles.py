"""The rectangle-intersection workload of Example 2.1.

The paper motivates CQLs with a database of rectangles stored as generalized
tuples ``(z = name) AND (a <= x <= c) AND (b <= y <= d)`` over the ternary
relation ``R'(z, x, y)``: the pairs of intersecting rectangles are then
expressible without the case analysis that the classical relational
formulation needs.

This module provides the tuple constructor and a closed-form evaluation of
the intersection query using the generalized one-dimensional index on ``x``
(plus a satisfiability check on the conjunction over ``y``), which is what
experiment E10 measures against a full scan.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple

from repro.constraints.relation import GeneralizedRelation
from repro.constraints.terms import Constraint, GeneralizedTuple, Variable


def rectangle_tuple(name: Any, a: float, b: float, c: float, d: float) -> GeneralizedTuple:
    """The generalized tuple for the rectangle with corners ``(a, b)`` and ``(c, d)``.

    Mirrors Example 2.1: ``(z = name) AND (a <= x <= c) AND (b <= y <= d)``.
    The ``z = name`` conjunct is carried as the tuple's ``name`` (a constant
    equality on a non-ordered column) so the ordered-theory machinery only
    sees ``x`` and ``y``.
    """
    if c < a or d < b:
        raise ValueError("rectangle corners are out of order")
    x, y = Variable("x"), Variable("y")
    return GeneralizedTuple(
        [
            Constraint(x, ">=", a),
            Constraint(x, "<=", c),
            Constraint(y, ">=", b),
            Constraint(y, "<=", d),
        ],
        name=name,
    )


def rectangle_relation(rectangles: Iterable[Tuple[Any, float, float, float, float]]) -> GeneralizedRelation:
    """Build the generalized relation R'(z, x, y) for a set of rectangles."""
    tuples = [rectangle_tuple(*rect) for rect in rectangles]
    return GeneralizedRelation(["x", "y"], tuples, name="rectangles")


def tuples_intersect(first: GeneralizedTuple, second: GeneralizedTuple) -> bool:
    """Whether two convex generalized tuples share a point (conjunction satisfiable)."""
    return GeneralizedTuple(first.constraints + second.constraints).is_satisfiable()


def intersecting_pairs(
    relation: GeneralizedRelation, index=None
) -> List[Tuple[Any, Any]]:
    """All pairs of distinct, intersecting rectangles (Example 2.1).

    When ``index`` (a :class:`~repro.constraints.index.
    GeneralizedOneDimensionalIndex` over ``x``) is provided, each rectangle
    only probes the tuples whose x-projection intersects its own — the
    indexed evaluation the paper advocates.  Without it, all pairs are
    checked (the naive evaluation used as a baseline).
    """
    pairs: List[Tuple[Any, Any]] = []
    seen = set()
    for gt in relation.tuples:
        if index is not None:
            low, high = gt.projection("x")
            candidates = index.candidate_tuples(low, high)
        else:
            candidates = relation.tuples
        for other in candidates:
            if other is gt:
                continue
            key = tuple(sorted((id(gt), id(other))))
            if key in seen:
                continue
            seen.add(key)
            if tuples_intersect(gt, other):
                pairs.append((gt.name, other.name))
    return pairs
