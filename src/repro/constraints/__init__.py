"""The constraint data model (CQLs) and its one-dimensional indexing.

Section 2.1 of the paper: a *generalized k-tuple* is a quantifier-free
conjunction of constraints over ``k`` variables ranging over the rationals
(the theory of rational order with constants); a *generalized relation* is a
finite set of such tuples — a DNF formula describing a possibly infinite
point set.

For *convex* CQLs the projection of every generalized tuple on an attribute
is a single interval, which becomes the tuple's **generalized key**; a
one-dimensional index over the attribute is then exactly dynamic interval
management (Proposition 2.2), which this package delegates to
:class:`repro.core.ExternalIntervalManager`.
"""

from repro.constraints.terms import (
    Constraint,
    GeneralizedTuple,
    UNBOUNDED_HIGH,
    UNBOUNDED_LOW,
    var,
)
from repro.constraints.relation import GeneralizedRelation
from repro.constraints.index import GeneralizedOneDimensionalIndex
from repro.constraints.rectangles import rectangle_tuple, intersecting_pairs

__all__ = [
    "Constraint",
    "GeneralizedOneDimensionalIndex",
    "GeneralizedRelation",
    "GeneralizedTuple",
    "UNBOUNDED_HIGH",
    "UNBOUNDED_LOW",
    "intersecting_pairs",
    "rectangle_tuple",
    "var",
]
