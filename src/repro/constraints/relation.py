"""Generalized relations and databases (the DNF level of the constraint model)."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List

from repro.constraints.terms import Constraint, GeneralizedTuple, Variable


class GeneralizedRelation:
    """A finite set of generalized tuples over the same variables.

    Semantically, the relation is the union (disjunction) of the point sets
    its tuples describe.  The class offers the closed-form operations needed
    by the examples and tests: satisfiable-tuple filtering, selection by
    conjoining constraints, and membership of concrete points.
    """

    def __init__(
        self,
        variables: Iterable[str],
        tuples: Iterable[GeneralizedTuple] = (),
        name: str = "relation",
    ) -> None:
        self.name = name
        self.variables: List[str] = list(variables)
        self.tuples: List[GeneralizedTuple] = list(tuples)
        for gt in self.tuples:
            self._check_variables(gt)

    def _check_variables(self, gt: GeneralizedTuple) -> None:
        unknown = gt.variables() - set(self.variables)
        if unknown:
            raise ValueError(
                f"tuple uses variables {sorted(unknown)} outside the relation schema "
                f"{self.variables}"
            )

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def add(self, gt: GeneralizedTuple) -> None:
        self._check_variables(gt)
        self.tuples.append(gt)

    def discard(self, gt: GeneralizedTuple) -> bool:
        try:
            self.tuples.remove(gt)
            return True
        except ValueError:
            return False

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def select(self, *constraints: Constraint, prune: bool = True) -> "GeneralizedRelation":
        """Conjoin ``constraints`` to every tuple (relational selection).

        With ``prune`` the unsatisfiable results are dropped, which keeps the
        output relation small; the represented point set is identical either
        way.
        """
        out = []
        for gt in self.tuples:
            candidate = gt.conjoin(*constraints)
            if not prune or candidate.is_satisfiable():
                out.append(candidate)
        return GeneralizedRelation(self.variables, out, name=f"{self.name}:selected")

    def satisfiable(self) -> "GeneralizedRelation":
        """Drop unsatisfiable tuples."""
        return GeneralizedRelation(
            self.variables,
            [gt for gt in self.tuples if gt.is_satisfiable()],
            name=self.name,
        )

    def contains_point(self, assignment: Dict[str, Any]) -> bool:
        """Whether the concrete point belongs to the represented set."""
        return any(gt.evaluate(assignment) for gt in self.tuples)

    def __iter__(self) -> Iterator[GeneralizedTuple]:
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({', '.join(self.variables)}) with {len(self.tuples)} tuples"


class GeneralizedDatabase:
    """A named collection of generalized relations."""

    def __init__(self) -> None:
        self.relations: Dict[str, GeneralizedRelation] = {}

    def add_relation(self, relation: GeneralizedRelation) -> None:
        self.relations[relation.name] = relation

    def __getitem__(self, name: str) -> GeneralizedRelation:
        return self.relations[name]

    def __len__(self) -> int:
        return len(self.relations)
