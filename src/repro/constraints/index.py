"""The generalized one-dimensional index of Section 2.1.

For convex CQLs, every generalized tuple projects on the indexed attribute
as one interval — its *generalized key*.  The index stores those keys in an
:class:`~repro.core.ExternalIntervalManager` and answers one-dimensional
range searches over the generalized database:

* ``range_query(a1, a2)`` returns a generalized relation representing all
  database points whose attribute lies in ``[a1, a2]``; it is computed by
  conjoining the constraint ``a1 <= x <= a2`` to exactly those tuples whose
  generalized key intersects ``[a1, a2]`` (instead of to every tuple, which
  is the trivial-but-inefficient solution the paper dismisses);
* ``insert`` / tuples are added by computing their projection and inserting
  one interval (Proposition 2.2 reduces the rest to the metablock tree).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List

from repro.analysis.complexity import metablock_query_bound
from repro.constraints.relation import GeneralizedRelation
from repro.constraints.terms import Constraint, GeneralizedTuple, Variable
from repro.core.interval_manager import ExternalIntervalManager
from repro.interval import Interval


class GeneralizedOneDimensionalIndex:
    """Index a generalized relation on one of its variables."""

    #: capability flags of the :class:`~repro.engine.protocols.MutableIndex`
    #: tier — both delegate to the interval manager's native machinery
    supports_deletes = True
    supports_bulk_load = True

    def __init__(
        self,
        disk,
        relation: GeneralizedRelation,
        attribute: str,
        dynamic: bool = True,
    ) -> None:
        if attribute not in relation.variables:
            raise ValueError(f"attribute {attribute!r} is not in the relation schema")
        self.disk = disk
        self.attribute = attribute
        self.relation = relation
        intervals = [self._generalized_key(gt) for gt in relation.tuples]
        #: generalized key per indexed tuple (tuples carry no uid of their
        #: own, so identity keys the mapping; the relation holds the tuples
        #: alive for exactly as long as they are indexed)
        self._keys: Dict[int, Interval] = {
            id(gt): iv for gt, iv in zip(relation.tuples, intervals)
        }
        self.manager = ExternalIntervalManager(disk, intervals, dynamic=dynamic)

    @property
    def generation(self) -> int:
        """The inner manager's rebuild counter, surfaced for the planner's
        plan-cache key: threshold rebuilds must invalidate cached plans
        over this index, not just over the manager directly."""
        return self.manager.generation

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    def _generalized_key(self, gt: GeneralizedTuple) -> Interval:
        low, high = gt.projection(self.attribute)
        return Interval(low, high, payload=gt)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, gt: GeneralizedTuple) -> None:
        """Add a generalized tuple to the relation and the index."""
        if id(gt) in self._keys:
            raise ValueError(
                f"tuple {gt!s} is already indexed; inserting the same object "
                "twice would silently double-index it"
            )
        iv = self._generalized_key(gt)
        # index first, book-keep after: a failed insert (e.g. a static
        # manager) must not leak the tuple into the relation, which the
        # persistent catalog would then serialize as if it were indexed
        self.manager.insert(iv)
        self.relation.add(gt)
        self._keys[id(gt)] = iv

    def delete(self, gt: GeneralizedTuple) -> bool:
        """Remove one tuple from the relation and the index; ``True`` when
        present (matched by object identity, like :meth:`insert` indexed it)."""
        iv = self._keys.pop(id(gt), None)
        if iv is None:
            return False
        self.relation.discard(gt)
        return self.manager.delete(iv)

    def bulk_load(self, gts: Iterable[GeneralizedTuple]) -> int:
        """Absorb a batch of tuples through the manager's global rebuild."""
        new = [gt for gt in gts]
        ids = [id(gt) for gt in new]
        if len(set(ids)) != len(ids) or any(i in self._keys for i in ids):
            raise ValueError(
                "bulk_load batch repeats a tuple or contains already-indexed "
                "tuples; indexing the same object twice would make one copy "
                "undeletable"
            )
        intervals = [self._generalized_key(gt) for gt in new]
        self.manager.bulk_load(intervals)  # validates/rebuilds before mutation
        for gt, iv in zip(new, intervals):
            self.relation.add(gt)
            self._keys[id(gt)] = iv
        return len(new)

    def destroy(self) -> None:
        """Free every block of the underlying manager (``Engine.drop_index``)."""
        self.manager.destroy()
        self._keys = {}

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def candidate_tuples(self, low: Any, high: Any) -> List[GeneralizedTuple]:
        """Tuples whose generalized key intersects ``[low, high]``."""
        return list(self.iter_candidates(low, high))

    def iter_candidates(self, low: Any, high: Any) -> Iterator[GeneralizedTuple]:
        """Stream the tuples whose generalized key intersects ``[low, high]``."""
        for iv in self.manager.iter_intersection(low, high):
            yield iv.payload

    def stabbing_tuples(self, value: Any) -> List[GeneralizedTuple]:
        """Tuples whose generalized key contains ``value``."""
        return [iv.payload for iv in self.manager.stabbing_query(value)]

    def iter_restricted(
        self, low: Any, high: Any, prune: bool = True
    ) -> Iterator[GeneralizedTuple]:
        """Stream candidate tuples conjoined with ``low <= attribute <= high``."""
        x = Variable(self.attribute)
        extra = (Constraint(x, ">=", low), Constraint(x, "<=", high))
        for gt in self.iter_candidates(low, high):
            candidate = gt.conjoin(*extra)
            if not prune or candidate.is_satisfiable():
                yield candidate

    def range_query(self, low: Any, high: Any, prune: bool = True) -> GeneralizedRelation:
        """The generalized relation restricted to ``low <= attribute <= high``."""
        return GeneralizedRelation(
            self.relation.variables,
            list(self.iter_restricted(low, high, prune=prune)),
            name=f"{self.relation.name}:range",
        )

    # ------------------------------------------------------------------ #
    # uniform Index surface (see repro.engine.protocols.Index)
    # ------------------------------------------------------------------ #
    def query(self, q: Any) -> "Any":
        """Answer an engine query descriptor with a lazy ``QueryResult``.

        * :class:`~repro.engine.queries.Range` -> the restricted (conjoined
          and satisfiability-pruned) generalized tuples;
        * :class:`~repro.engine.queries.Stab` -> tuples whose generalized
          key contains ``q.x``.
        """
        from repro.engine.queries import Range, Stab
        from repro.engine.result import QueryResult

        n, b = max(len(self), 2), self.disk.block_size
        if isinstance(q, Range):
            return QueryResult(
                lambda: self.iter_restricted(q.low, q.high),
                disk=self.disk,
                bound=lambda t: metablock_query_bound(n, b, t),
                label=f"{self.attribute}:range[{q.low},{q.high}]",
            )
        if isinstance(q, Stab):
            return QueryResult(
                lambda: (iv.payload for iv in self.manager.iter_stabbing(q.x)),
                disk=self.disk,
                bound=lambda t: metablock_query_bound(n, b, t),
                label=f"{self.attribute}:stab@{q.x}",
            )
        raise TypeError(
            f"GeneralizedOneDimensionalIndex cannot answer {type(q).__name__} queries"
        )

    def supports(self, q: Any) -> bool:
        """Point (:class:`Stab`) and range (:class:`Range`) restrictions."""
        from repro.engine.queries import Range, Stab

        return isinstance(q, (Stab, Range))

    def cost(self, q: Any) -> "Any":
        """Section 2.1 via Theorem 3.2: ``O(log_B n + t/B)`` I/Os."""
        from repro.engine.protocols import Bound

        n, b = max(len(self), 2), self.disk.block_size
        return Bound.of("log_B n + t/B", lambda t: metablock_query_bound(n, b, t))

    def io_stats(self):
        """Live I/O counters of the backing store."""
        return self.disk.stats

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def block_count(self) -> int:
        return self.manager.block_count()

    @property
    def live_count(self) -> int:
        """Number of live (non-deleted) tuples — what the cost bounds use."""
        return self.manager.live_count

    def __len__(self) -> int:
        return len(self.manager)
