"""The generalized one-dimensional index of Section 2.1.

For convex CQLs, every generalized tuple projects on the indexed attribute
as one interval — its *generalized key*.  The index stores those keys in an
:class:`~repro.core.ExternalIntervalManager` and answers one-dimensional
range searches over the generalized database:

* ``range_query(a1, a2)`` returns a generalized relation representing all
  database points whose attribute lies in ``[a1, a2]``; it is computed by
  conjoining the constraint ``a1 <= x <= a2`` to exactly those tuples whose
  generalized key intersects ``[a1, a2]`` (instead of to every tuple, which
  is the trivial-but-inefficient solution the paper dismisses);
* ``insert`` / tuples are added by computing their projection and inserting
  one interval (Proposition 2.2 reduces the rest to the metablock tree).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.constraints.relation import GeneralizedRelation
from repro.constraints.terms import Constraint, GeneralizedTuple, Variable
from repro.core.interval_manager import ExternalIntervalManager
from repro.interval import Interval


class GeneralizedOneDimensionalIndex:
    """Index a generalized relation on one of its variables."""

    def __init__(
        self,
        disk,
        relation: GeneralizedRelation,
        attribute: str,
        dynamic: bool = True,
    ) -> None:
        if attribute not in relation.variables:
            raise ValueError(f"attribute {attribute!r} is not in the relation schema")
        self.disk = disk
        self.attribute = attribute
        self.relation = relation
        intervals = [self._generalized_key(gt) for gt in relation.tuples]
        self.manager = ExternalIntervalManager(disk, intervals, dynamic=dynamic)

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    def _generalized_key(self, gt: GeneralizedTuple) -> Interval:
        low, high = gt.projection(self.attribute)
        return Interval(low, high, payload=gt)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, gt: GeneralizedTuple) -> None:
        """Add a generalized tuple to the relation and the index."""
        self.relation.add(gt)
        self.manager.insert(self._generalized_key(gt))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def candidate_tuples(self, low: Any, high: Any) -> List[GeneralizedTuple]:
        """Tuples whose generalized key intersects ``[low, high]``."""
        return [iv.payload for iv in self.manager.intersection_query(low, high)]

    def stabbing_tuples(self, value: Any) -> List[GeneralizedTuple]:
        """Tuples whose generalized key contains ``value``."""
        return [iv.payload for iv in self.manager.stabbing_query(value)]

    def range_query(self, low: Any, high: Any, prune: bool = True) -> GeneralizedRelation:
        """The generalized relation restricted to ``low <= attribute <= high``."""
        x = Variable(self.attribute)
        extra = (Constraint(x, ">=", low), Constraint(x, "<=", high))
        selected = []
        for gt in self.candidate_tuples(low, high):
            candidate = gt.conjoin(*extra)
            if not prune or candidate.is_satisfiable():
                selected.append(candidate)
        return GeneralizedRelation(
            self.relation.variables, selected, name=f"{self.relation.name}:range"
        )

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def block_count(self) -> int:
        return self.manager.block_count()

    def __len__(self) -> int:
        return len(self.manager)
