"""Constraints and generalized tuples over the theory of rational order.

The constraint language is the one used throughout Section 2.1 of the
paper: atomic constraints compare a variable with a constant or with another
variable using ``<, <=, =, >=, >``.  A :class:`GeneralizedTuple` is a finite
conjunction of such constraints over at most ``k`` variables and finitely
represents a (possibly infinite) set of rational ``k``-tuples.

Satisfiability and variable projections are decided by constraint
propagation over the order graph, which is sound and complete for this
theory: a conjunction of dense-order constraints is unsatisfiable exactly
when the derived relation forces ``u < u`` for some term or orders two
constants against their numeric order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from numbers import Number
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

UNBOUNDED_LOW = -math.inf
UNBOUNDED_HIGH = math.inf

_OPS = ("<", "<=", "=", ">=", ">")


@dataclass(frozen=True)
class Variable:
    """A named variable ranging over the rationals."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def var(name: str) -> Variable:
    """Convenience constructor for a :class:`Variable`."""
    return Variable(name)


Term = Union[Variable, Number]


@dataclass(frozen=True)
class Constraint:
    """An atomic order constraint ``lhs op rhs``.

    ``lhs`` must be a variable; ``rhs`` is a variable or a numeric constant.
    """

    lhs: Variable
    op: str
    rhs: Term

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")
        if not isinstance(self.lhs, Variable):
            raise TypeError("the left-hand side of a constraint must be a variable")
        if not isinstance(self.rhs, (Variable, Number)):
            raise TypeError("the right-hand side must be a variable or a number")

    # -- helpers ---------------------------------------------------------- #
    def variables(self) -> FrozenSet[str]:
        names = {self.lhs.name}
        if isinstance(self.rhs, Variable):
            names.add(self.rhs.name)
        return frozenset(names)

    def evaluate(self, assignment: Dict[str, Any]) -> bool:
        """Evaluate under a (total) variable assignment."""
        left = assignment[self.lhs.name]
        right = assignment[self.rhs.name] if isinstance(self.rhs, Variable) else self.rhs
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == "=":
            return left == right
        if self.op == ">=":
            return left >= right
        return left > right

    def normalized(self) -> List[Tuple[Term, Term, bool]]:
        """Rewrite as a list of ``(smaller, larger, strict)`` order facts."""
        if self.op == "<":
            return [(self.lhs, self.rhs, True)]
        if self.op == "<=":
            return [(self.lhs, self.rhs, False)]
        if self.op == "=":
            return [(self.lhs, self.rhs, False), (self.rhs, self.lhs, False)]
        if self.op == ">=":
            return [(self.rhs, self.lhs, False)]
        return [(self.rhs, self.lhs, True)]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.lhs} {self.op} {self.rhs}"


class GeneralizedTuple:
    """A conjunction of order constraints (a generalized k-tuple)."""

    def __init__(self, constraints: Iterable[Constraint], name: Any = None) -> None:
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)
        self.name = name
        self._closure: Optional[Dict[Tuple[str, str], bool]] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def conjoin(self, *constraints: Constraint) -> "GeneralizedTuple":
        """A new tuple with extra constraints added (used by range restriction)."""
        return GeneralizedTuple(self.constraints + tuple(constraints), name=self.name)

    def variables(self) -> FrozenSet[str]:
        names: set = set()
        for c in self.constraints:
            names |= c.variables()
        return frozenset(names)

    @property
    def arity(self) -> int:
        return len(self.variables())

    # ------------------------------------------------------------------ #
    # order-graph closure
    # ------------------------------------------------------------------ #
    def _terms_and_edges(self):
        """Terms (variables + constants) and <=-edges with strictness flags."""
        terms: Dict[str, Term] = {}
        edges: Dict[Tuple[str, str], bool] = {}

        def key(term: Term) -> str:
            if isinstance(term, Variable):
                terms[f"v:{term.name}"] = term
                return f"v:{term.name}"
            terms[f"c:{float(term)!r}"] = term
            return f"c:{float(term)!r}"

        def add_edge(a: str, b: str, strict: bool) -> None:
            previous = edges.get((a, b))
            edges[(a, b)] = strict or (previous or False)

        constants: List[Tuple[str, float]] = []
        for constraint in self.constraints:
            for smaller, larger, strict in constraint.normalized():
                add_edge(key(smaller), key(larger), strict)
        for name, term in list(terms.items()):
            if name.startswith("c:"):
                constants.append((name, float(term)))
        # known numeric order among the constants that appear
        constants.sort(key=lambda item: item[1])
        for i in range(len(constants) - 1):
            a_name, a_val = constants[i]
            b_name, b_val = constants[i + 1]
            add_edge(a_name, b_name, a_val < b_val)
        return terms, edges

    def _compute_closure(self) -> Dict[Tuple[str, str], bool]:
        """Transitive closure of the <= relation, remembering strictness."""
        if self._closure is not None:
            return self._closure
        terms, edges = self._terms_and_edges()
        nodes = list(terms.keys())
        reach: Dict[Tuple[str, str], bool] = dict(edges)
        for k in nodes:
            for i in nodes:
                if (i, k) not in reach:
                    continue
                for j in nodes:
                    if (k, j) not in reach:
                        continue
                    strict = reach[(i, k)] or reach[(k, j)]
                    if (i, j) not in reach:
                        reach[(i, j)] = strict
                    else:
                        reach[(i, j)] = reach[(i, j)] or strict
        self._closure = reach
        return reach

    def is_satisfiable(self) -> bool:
        """Whether some rational assignment satisfies every constraint."""
        reach = self._compute_closure()
        terms, _ = self._terms_and_edges()
        for (a, b), strict in reach.items():
            if a == b and strict:
                return False
            if a.startswith("c:") and b.startswith("c:"):
                a_val, b_val = float(terms[a]), float(terms[b])
                if a_val > b_val or (strict and a_val == b_val):
                    return False
        return True

    def evaluate(self, assignment: Dict[str, Any]) -> bool:
        """Whether a concrete point satisfies the conjunction."""
        return all(c.evaluate(assignment) for c in self.constraints)

    # ------------------------------------------------------------------ #
    # projection (the generalized key of Section 2.1)
    # ------------------------------------------------------------------ #
    def projection(self, variable: str) -> Tuple[float, float]:
        """The closed interval ``[low, high]`` the tuple allows for ``variable``.

        For convex CQLs this projection is exact (a single interval); open
        bounds are reported with their closed endpoints, which can only make
        the generalized key slightly larger — harmless for indexing, because
        the query constraint is conjoined to the tuple afterwards.
        Unbounded directions use ``-inf`` / ``+inf``.
        """
        reach = self._compute_closure()
        terms, _ = self._terms_and_edges()
        target = f"v:{variable}"
        if target not in terms:
            return (UNBOUNDED_LOW, UNBOUNDED_HIGH)
        low, high = UNBOUNDED_LOW, UNBOUNDED_HIGH
        for name, term in terms.items():
            if not name.startswith("c:"):
                continue
            value = float(term)
            if (name, target) in reach:  # constant <= variable
                low = max(low, value)
            if (target, name) in reach:  # variable <= constant
                high = min(high, value)
        return (low, high)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = " AND ".join(str(c) for c in self.constraints) or "TRUE"
        prefix = f"{self.name}: " if self.name is not None else ""
        return prefix + body

    def __len__(self) -> int:
        return len(self.constraints)
