"""``ShardMap`` — who owns which records, and which shards a query needs.

Two partition strategies:

``hash``
    A record lives on ``mix(uid) % shards``, where :func:`mix_uid` is a
    fixed 64-bit avalanche (the splitmix64 finalizer) — deterministic
    across processes and restarts, unlike Python's seeded ``hash()``.
    Placement is uniform and oblivious to geometry, so every read
    broadcasts; writes and per-record deletes route to exactly one shard.

``range``
    Records partition on their **low endpoint**: ``shards - 1`` sorted
    interior split points give shard ``i`` the half-open slab
    ``[splits[i-1], splits[i])`` (the first and last slabs extend to
    ∓infinity).  A record *exactly on* a split point belongs to the shard
    on the right — the same ``bisect_right`` everywhere, so ownership is
    never ambiguous.  Reads prune: the map tracks ``max_length``, the
    longest interval ever routed through it, so any interval matching
    ``Stab(x)`` must have its low endpoint in ``[x - max_length, x]`` —
    a *candidate-low window* that overlaps only a few slabs.  Windows
    compose through the algebra (intersection under ``And``, hull under
    ``Or``, pass-through under ``Limit``/``OrderBy``); anything without a
    window — ``Not``, unknown leaves, unbound ``Param`` queries —
    conservatively broadcasts.

The map serializes to/from plain JSON data (:meth:`ShardMap.as_dict`),
which the cluster catalog (``cluster.json``) persists so
``Cluster.open`` restores the exact topology — including the grown
``max_length``, without which a restart would silently un-prune nothing
(correctness never depends on the window: it is a superset of owners).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.queries import (
    And,
    EndpointRange,
    Limit,
    Not,
    Or,
    OrderBy,
    Range,
    Stab,
    unbound_params,
)

#: the partition strategies ``ShardMap`` understands
STRATEGIES = ("hash", "range")

_MASK64 = (1 << 64) - 1


def mix_uid(uid: int) -> int:
    """The splitmix64 finalizer: a seed-free 64-bit avalanche of ``uid``.

    Used for hash placement instead of ``hash()`` because Python string
    hashing is salted per process (PYTHONHASHSEED) and even integer
    ``hash`` is the identity — adjacent uids would stripe shards in
    insertion order instead of spreading them.
    """
    x = (uid + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


#: a closed window of candidate low endpoints; ``None`` means "anywhere"
_Window = Optional[Tuple[float, float]]


class ShardMap:
    """The partition function of one cluster: N shards, one strategy.

    Plain data plus pure functions — no sockets, no processes; the router
    consults it, the cluster catalog persists it.
    """

    def __init__(
        self,
        shards: int,
        strategy: str = "hash",
        *,
        splits: Optional[Sequence[float]] = None,
        max_length: float = 0.0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"a cluster needs at least one shard, not {shards}")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown partition strategy {strategy!r}; know {list(STRATEGIES)}"
            )
        self.shards = shards
        self.strategy = strategy
        self.max_length = float(max_length)
        if strategy == "range":
            if splits is None:
                raise ValueError(
                    "range partitioning needs its split points; build them "
                    "with ShardMap.even_splits(shards, domain=...)"
                )
            splits = [float(s) for s in splits]
            if len(splits) != shards - 1:
                raise ValueError(
                    f"{shards} shards need exactly {shards - 1} interior "
                    f"split points, got {len(splits)}"
                )
            if sorted(splits) != splits:
                raise ValueError(f"split points must be sorted: {splits}")
            self.splits: List[float] = splits
        else:
            if splits:
                raise ValueError("hash partitioning takes no split points")
            self.splits = []

    @classmethod
    def even_splits(
        cls,
        shards: int,
        *,
        domain: Tuple[float, float] = (0.0, 1000.0),
        max_length: float = 0.0,
    ) -> "ShardMap":
        """A range map whose slabs split ``domain`` evenly.

        The first/last slabs still extend to ∓infinity, so records outside
        the declared domain stay owned (by the edge shards) — the domain
        only shapes the balance, never correctness.
        """
        lo, hi = float(domain[0]), float(domain[1])
        if not lo < hi:
            raise ValueError(f"domain must be an increasing pair, not {domain}")
        step = (hi - lo) / shards
        splits = [lo + step * i for i in range(1, shards)]
        return cls(shards, "range", splits=splits, max_length=max_length)

    # ------------------------------------------------------------------ #
    # placement (writes)
    # ------------------------------------------------------------------ #
    def shard_for_point(self, low: float) -> int:
        """The shard owning low endpoint ``low`` (range strategy)."""
        return bisect_right(self.splits, low)

    def shard_for_record(self, record: Any) -> int:
        """The one shard that owns ``record``."""
        if self.strategy == "hash":
            return mix_uid(record.uid) % self.shards
        return self.shard_for_point(record.low)

    def partition(self, records: Iterable[Any]) -> Dict[int, List[Any]]:
        """Records grouped by owning shard (what ``bulk_load`` splits on)."""
        groups: Dict[int, List[Any]] = {}
        for record in records:
            groups.setdefault(self.shard_for_record(record), []).append(record)
        return groups

    def note_records(self, records: Iterable[Any]) -> bool:
        """Track interval lengths for pruning; True when ``max_length`` grew.

        Callers persist the topology when it grows: a crash between the
        write and the next checkpoint must not shrink the window below an
        already-resident record's length.
        """
        longest = self.max_length
        for record in records:
            low = getattr(record, "low", None)
            high = getattr(record, "high", None)
            if low is not None and high is not None:
                longest = max(longest, float(high) - float(low))
        if longest > self.max_length:
            self.max_length = longest
            return True
        return False

    # ------------------------------------------------------------------ #
    # routing (reads)
    # ------------------------------------------------------------------ #
    def all_shards(self) -> List[int]:
        return list(range(self.shards))

    def shards_for_query(self, q: Any) -> List[int]:
        """Every shard that can hold a record matching ``q`` (a superset).

        Hash placement is geometry-oblivious, so reads broadcast.  Range
        placement intersects the query's candidate-low window with the
        slabs; a provably-empty window (contradictory ``And``) routes to
        zero shards.
        """
        if self.strategy == "hash" or self.shards == 1:
            return self.all_shards()
        if unbound_params(q):
            return self.all_shards()
        window = self._low_window(q)
        if window is None:
            return self.all_shards()
        lo, hi = window
        if lo > hi:
            return []
        return list(range(self.shard_for_point(lo), self.shard_for_point(hi) + 1))

    def _low_window(self, q: Any) -> _Window:
        """The closed window of low endpoints a match for ``q`` can have."""
        reach = self.max_length
        if isinstance(q, Stab):
            return (q.x - reach, q.x)
        if isinstance(q, Range):
            # any interval overlapping [low, high] starts in this window
            return (q.low - reach, q.high)
        if isinstance(q, EndpointRange):
            if q.side == "low":
                return (q.low, q.high)
            # high endpoint in [low, high] => low in [low - reach, high]
            return (q.low - reach, q.high)
        if isinstance(q, And):
            lo, hi = float("-inf"), float("inf")
            for part in q.parts:
                w = self._low_window(part)
                if w is not None:
                    lo, hi = max(lo, w[0]), min(hi, w[1])
            return None if (lo, hi) == (float("-inf"), float("inf")) else (lo, hi)
        if isinstance(q, Or):
            lo, hi = float("inf"), float("-inf")
            for part in q.parts:
                w = self._low_window(part)
                if w is None:
                    return None
                lo, hi = min(lo, w[0]), max(hi, w[1])
            return (lo, hi) if q.parts else None
        if isinstance(q, (Limit, OrderBy)):
            return self._low_window(q.part)
        if isinstance(q, Not):
            return None
        return None  # unknown leaves (class/geometry queries): broadcast

    # ------------------------------------------------------------------ #
    # the catalog form
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "strategy": self.strategy,
            "splits": list(self.splits),
            "max_length": self.max_length,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardMap":
        try:
            shards = int(data["shards"])
            strategy = str(data["strategy"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed shard map {data!r}: {exc}") from exc
        splits = data.get("splits") or None
        return cls(
            shards,
            strategy,
            splits=splits if strategy == "range" else None,
            max_length=float(data.get("max_length", 0.0)),
        )

    def describe(self) -> str:
        if self.strategy == "hash":
            return f"hash(uid) % {self.shards}"
        edges = ", ".join(f"{s:g}" for s in self.splits)
        return f"range on low: splits [{edges}], max_length={self.max_length:g}"

    def __repr__(self) -> str:
        return f"ShardMap({self.describe()})"
