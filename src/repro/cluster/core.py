"""``Cluster`` — the facade tying topology, shards, router and frontend.

One object owns the whole lifecycle::

    with Cluster.create(dir, shards=4, strategy="range") as cluster:
        host, port = cluster.address          # speak ReproClient at it
        ...
    # __exit__ closed the frontend, then gracefully drained every shard

``create`` lays down a fresh topology (persisted as ``cluster.json`` in
the cluster directory, next to the per-shard ``shard-<i>/`` data
directories); ``open`` restores one — same strategy, same split points,
same grown ``max_length`` — so a restarted cluster routes exactly like
the one that wrote the data.  ``start`` then:

1. boots the shards (:class:`~repro.cluster.supervisor.ShardSupervisor`),
2. wires one pooled :class:`~repro.cluster.router.ShardConnection` each,
3. builds the :class:`~repro.cluster.router.ShardRouter` and
   **bootstraps** it — adopting the shards' resident index names and
   advancing this process's uid counters past every stored uid (the
   router mints identities; a restart must never re-mint one),
4. binds the :class:`~repro.cluster.router.ClusterFrontend` clients talk
   to.

``close(drain=True)`` is the graceful path: frontend first (no new
requests), then a parallel wire-``shutdown`` drain of the shards — each
checkpoints, truncates its WAL and exits 0 — and a final topology save.
The CLI (``repro cluster serve``) runs exactly this on SIGTERM, which is
what the CI drain check observes.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.cluster.router import ClusterFrontend, ShardConnection, ShardRouter
from repro.cluster.supervisor import ShardSupervisor
from repro.cluster.topology import ShardMap

#: the persisted topology catalog inside a cluster directory
TOPOLOGY_FILE = "cluster.json"
TOPOLOGY_FORMAT = 1


class Cluster:
    """N shard servers + scatter-gather router behind one address."""

    def __init__(
        self,
        shard_map: ShardMap,
        *,
        directory: Optional[str] = None,
        mode: str = "process",
        host: str = "127.0.0.1",
        port: int = 0,
        block_size: int = 16,
        buffer_pages: Optional[int] = None,
        commit_latency_ms: float = 0.0,
    ) -> None:
        self.shard_map = shard_map
        self.directory = directory
        self.mode = mode
        self.host = host
        self.port = port
        self.block_size = block_size
        self.buffer_pages = buffer_pages
        self.commit_latency_ms = commit_latency_ms
        self.supervisor: Optional[ShardSupervisor] = None
        self.router: Optional[ShardRouter] = None
        self.frontend: Optional[ClusterFrontend] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        directory: Optional[str] = None,
        *,
        shards: int = 2,
        strategy: str = "hash",
        domain: Tuple[float, float] = (0.0, 1000.0),
        splits: Optional[Sequence[float]] = None,
        mode: str = "process",
        host: str = "127.0.0.1",
        port: int = 0,
        block_size: int = 16,
        buffer_pages: Optional[int] = None,
        commit_latency_ms: float = 0.0,
    ) -> "Cluster":
        """A fresh cluster (topology persisted when ``directory`` given)."""
        if strategy == "range":
            if splits is not None:
                shard_map = ShardMap(shards, "range", splits=splits)
            else:
                shard_map = ShardMap.even_splits(shards, domain=domain)
        else:
            shard_map = ShardMap(shards, strategy)
        cluster = cls(
            shard_map, directory=directory, mode=mode, host=host, port=port,
            block_size=block_size, buffer_pages=buffer_pages,
            commit_latency_ms=commit_latency_ms,
        )
        if directory:
            os.makedirs(directory, exist_ok=True)
            cluster._save_topology()
        return cluster

    @classmethod
    def open(
        cls,
        directory: str,
        *,
        mode: str = "process",
        host: str = "127.0.0.1",
        port: int = 0,
        buffer_pages: Optional[int] = None,
        commit_latency_ms: float = 0.0,
    ) -> "Cluster":
        """Restore a persisted cluster from its ``cluster.json``."""
        path = os.path.join(directory, TOPOLOGY_FILE)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("format") != TOPOLOGY_FORMAT:
            raise ValueError(
                f"{path}: unknown topology format {data.get('format')!r} "
                f"(this build reads format {TOPOLOGY_FORMAT})"
            )
        return cls(
            ShardMap.from_dict(data),
            directory=directory,
            mode=mode,
            host=host,
            port=port,
            block_size=int(data.get("block_size", 16)),
            buffer_pages=buffer_pages,
            commit_latency_ms=commit_latency_ms,
        )

    def _save_topology(self) -> None:
        if not self.directory:
            return
        path = os.path.join(self.directory, TOPOLOGY_FILE)
        payload = {
            "format": TOPOLOGY_FORMAT,
            **self.shard_map.as_dict(),
            "block_size": self.block_size,
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)  # atomic: readers never see a torn catalog

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "Cluster":
        """Boot shards, wire the router, bind the frontend."""
        if self.frontend is not None:
            return self
        supervisor = ShardSupervisor(
            mode=self.mode,
            directory=self.directory,
            block_size=self.block_size,
            buffer_pages=self.buffer_pages,
            commit_latency_ms=self.commit_latency_ms,
        )
        handles = supervisor.start_shards(self.shard_map.shards)
        links = [ShardConnection(h.shard, h.host, h.port) for h in handles]
        router = ShardRouter(
            self.shard_map,
            links,
            supervisor=supervisor,
            persist=self._save_topology if self.directory else None,
        )
        router.bootstrap()
        frontend = ClusterFrontend(router, self.host, self.port)
        frontend.start()
        self.supervisor, self.router, self.frontend = supervisor, router, frontend
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self.frontend is None:
            raise RuntimeError("the cluster is not started")
        return self.frontend.address

    def serve_forever(self) -> None:
        """Block serving the frontend (what ``repro cluster serve`` runs)."""
        if self.frontend is None:
            raise RuntimeError("the cluster is not started")
        self.frontend.serve_forever()

    def status(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"topology": self.shard_map.as_dict()}
        if self.frontend is not None:
            host, port = self.frontend.address
            out["address"] = f"{host}:{port}"
        if self.supervisor is not None:
            out["shards"] = self.supervisor.status()
        return out

    def close(self, *, drain: bool = True) -> bool:
        """Frontend down, shards drained (or killed); True == all clean."""
        clean = True
        if self.frontend is not None:
            self.frontend.close()
            self.frontend = None
        if self.router is not None:
            self.router.close()
            self.router = None
        if self.supervisor is not None:
            if drain:
                clean = self.supervisor.drain()
            else:
                self.supervisor.kill()
            self.supervisor = None
        self._save_topology()  # the final max_length makes it to disk
        return clean

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()
