"""``ShardSupervisor`` — starts, watches, drains the cluster's shards.

Each shard is one ordinary ``ReproServer`` over its own engine — its own
page file, its own WAL, its own commit mutex — which is the whole point:
N shards give the cluster N independent write pipelines.  The supervisor
runs them in one of two modes:

``process``
    ``python -m repro serve --port 0 --db <dir>/shard-<i>/shard.pages``
    per shard (production shape: a crash takes out one shard, its WAL
    replays on restart).  Readiness is the server's own ``listening on``
    line plus a ``ping`` round-trip.

``thread``
    In-process :class:`~repro.server.ReproServer` instances on real
    loopback sockets — the wire protocol is still fully exercised, but
    tests skip N interpreter startups.

Liveness questions go through :meth:`ensure_alive`, which raises the
protocol's :class:`~repro.server.protocol.ShardUnavailableError` with
the shard's observed state (exit code, never-started, closed) — the
router converts a mid-request connection failure into that structured
error instead of hanging or leaking a raw ``ConnectionError``.

Shutdown is a **graceful drain**: each live shard gets a wire
``shutdown`` (so it checkpoints, truncates its WAL and exits 0), in
parallel, before anything is forcibly killed.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.server import protocol as P
from repro.server.client import ReproClient

MODES = ("process", "thread")


@dataclass
class ShardHandle:
    """One shard's runtime state as the supervisor sees it."""

    shard: int
    host: str = ""
    port: int = 0
    db_path: Optional[str] = None
    proc: Optional[subprocess.Popen] = None
    server: Any = None  # thread mode: the in-process ReproServer
    started: bool = False
    drained: bool = False
    #: first observed failure description (exit code, refused ping...)
    fault: Optional[str] = None

    def alive(self) -> bool:
        if not self.started or self.drained:
            return False
        if self.proc is not None:
            return self.proc.poll() is None
        if self.server is not None:
            return not self.server._closed
        return False

    def status(self) -> Dict[str, Any]:
        state = "live" if self.alive() else (
            "drained" if self.drained else
            "dead" if self.started else "unstarted"
        )
        out: Dict[str, Any] = {
            "shard": self.shard,
            "address": f"{self.host}:{self.port}" if self.started else None,
            "state": state,
        }
        if self.db_path:
            out["db"] = self.db_path
        if self.proc is not None and self.proc.poll() is not None:
            out["exit_code"] = self.proc.poll()
        if self.fault:
            out["fault"] = self.fault
        return out


def _python_env() -> Dict[str, str]:
    """The child environment with this package importable."""
    import repro

    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (pkg_root, env.get("PYTHONPATH")) if p
    )
    return env


class ShardSupervisor:
    """Spawn/monitor/drain N shard servers (see the module docstring)."""

    def __init__(
        self,
        *,
        mode: str = "process",
        directory: Optional[str] = None,
        block_size: int = 16,
        buffer_pages: Optional[int] = None,
        start_timeout: float = 30.0,
        commit_latency_ms: float = 0.0,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown supervisor mode {mode!r}; know {list(MODES)}")
        self.mode = mode
        self.directory = directory
        self.block_size = block_size
        self.buffer_pages = buffer_pages
        self.start_timeout = start_timeout
        #: simulated per-commit log-device round-trip forwarded to every
        #: shard's WAL (persistent shards only — without a db there is no
        #: log to slow down)
        self.commit_latency_ms = max(0.0, commit_latency_ms)
        self.handles: List[ShardHandle] = []
        #: guards the handle list (status reads race shard starts/drains)
        self._spawn_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # starting
    # ------------------------------------------------------------------ #
    def start_shards(self, count: int) -> List[ShardHandle]:
        """Boot ``count`` shards and wait until each answers ``ping``."""
        handles = [ShardHandle(shard=i) for i in range(count)]
        with self._spawn_lock:
            self.handles = handles
        for handle in handles:
            if self.mode == "process":
                self._start_process_shard(handle)
            else:
                self._start_thread_shard(handle)
        for handle in handles:
            self._probe(handle)
        return handles

    def _shard_db(self, shard: int) -> Optional[str]:
        if self.directory is None:
            return None
        shard_dir = os.path.join(self.directory, f"shard-{shard}")
        os.makedirs(shard_dir, exist_ok=True)
        return os.path.join(shard_dir, "shard.pages")

    def _start_process_shard(self, handle: ShardHandle) -> None:
        db_path = self._shard_db(handle.shard)
        cmd = [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--block-size", str(self.block_size),
        ]
        if db_path:
            cmd += ["--db", db_path]
        if self.buffer_pages:
            cmd += ["--buffer-pages", str(self.buffer_pages)]
        if self.commit_latency_ms and db_path:
            cmd += ["--commit-latency-ms", str(self.commit_latency_ms)]
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=_python_env(),
        )
        deadline = time.monotonic() + self.start_timeout
        while True:
            line = proc.stdout.readline()
            if "listening on" in line:
                address = line.rsplit(" ", 1)[-1].strip()
                host, port = address.rsplit(":", 1)
                handle.host, handle.port = host, int(port)
                break
            if not line or proc.poll() is not None:
                raise P.ShardUnavailableError(
                    f"shard {handle.shard} failed to start: {line!r} "
                    f"(exit {proc.poll()})"
                )
            if time.monotonic() > deadline:
                proc.kill()
                raise P.ShardUnavailableError(
                    f"shard {handle.shard} did not report an address within "
                    f"{self.start_timeout}s"
                )
        handle.db_path, handle.proc, handle.started = db_path, proc, True

    def _start_thread_shard(self, handle: ShardHandle) -> None:
        from repro.engine import Engine
        from repro.io import FileDisk, SimulatedDisk
        from repro.server import ReproServer

        db_path = self._shard_db(handle.shard)
        latency = self.commit_latency_ms / 1000.0
        if db_path:
            sidecar = FileDisk._meta_path_for(db_path)
            if os.path.exists(sidecar):
                engine = Engine.open(db_path, buffer_pages=self.buffer_pages,
                                     commit_latency=latency)
            else:
                engine = Engine(
                    FileDisk(db_path, block_size=self.block_size),
                    buffer_pages=self.buffer_pages,
                )
                engine.attach_wal(commit_latency=latency)
        else:
            engine = Engine(
                SimulatedDisk(self.block_size), buffer_pages=self.buffer_pages
            )
        server = ReproServer(engine, close_engine=True).start()
        handle.host, handle.port = server.address
        handle.db_path, handle.server, handle.started = db_path, server, True

    def _probe(self, handle: ShardHandle) -> None:
        """One ping round-trip (the client's own backoff rides the race)."""
        try:
            with ReproClient(handle.host, handle.port, timeout=10.0,
                             connect_retries=6) as probe:
                probe.ping()
        except (OSError, RuntimeError) as exc:
            handle.fault = f"readiness probe failed: {exc!r}"
            raise P.ShardUnavailableError(
                f"shard {handle.shard} at {handle.host}:{handle.port} "
                f"never became ready: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # watching
    # ------------------------------------------------------------------ #
    def addresses(self) -> List[Any]:
        return [(h.host, h.port) for h in self.handles]

    def ensure_alive(self, shard: int, *, context: str = "") -> None:
        """Raise a structured ``shard_unavailable`` unless ``shard`` is live."""
        with self._spawn_lock:
            handle = self.handles[shard]
            alive = handle.alive()
            status = handle.status()
        if not alive:
            detail = status.get("fault") or status["state"]
            if "exit_code" in status:
                detail += f" (exit {status['exit_code']})"
            suffix = f" during {context}" if context else ""
            raise P.ShardUnavailableError(
                f"shard {shard} at {status.get('address')} is unavailable"
                f"{suffix}: {detail}"
            )

    def status(self) -> List[Dict[str, Any]]:
        with self._spawn_lock:
            return [h.status() for h in self.handles]

    # ------------------------------------------------------------------ #
    # stopping
    # ------------------------------------------------------------------ #
    def drain(self, timeout: float = 20.0) -> bool:
        """Gracefully stop every live shard; True when all exited cleanly.

        Parallel wire ``shutdown`` per shard — a process shard
        checkpoints, truncates its WAL and exits 0; a thread shard closes
        its server (which closes its engine).  Dead shards are skipped.
        """
        clean = [True] * len(self.handles)

        def stop(handle: ShardHandle) -> None:
            if not handle.alive():
                clean[handle.shard] = not handle.started or handle.drained
                return
            try:
                if handle.proc is not None:
                    with ReproClient(handle.host, handle.port, timeout=timeout,
                                     connect_retries=0) as db:
                        db.shutdown()
                    clean[handle.shard] = _wait_clean(handle.proc, timeout)
                else:
                    handle.server.close()
            except (OSError, RuntimeError) as exc:
                handle.fault = f"drain failed: {exc!r}"
                clean[handle.shard] = False
            handle.drained = True

        threads = [
            threading.Thread(target=stop, args=(h,), daemon=True)
            for h in self.handles
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout + 5)
        return all(clean)

    def kill(self) -> None:
        """Hard stop (the drain's fallback and the tests' crash injector)."""
        for handle in self.handles:
            if handle.proc is not None and handle.proc.poll() is None:
                handle.proc.kill()
                handle.proc.wait(timeout=10)
            if handle.server is not None:
                handle.server.close()
            handle.drained = True


def _wait_clean(proc: subprocess.Popen, timeout: float) -> bool:
    try:
        return proc.wait(timeout=timeout) == 0
    except subprocess.TimeoutExpired:
        proc.kill()
        return False
