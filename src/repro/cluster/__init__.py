"""``repro.cluster`` — hash/range-partitioned serving over N shards.

A cluster is N ordinary :class:`~repro.server.ReproServer` shards (each
with its own page file, WAL and commit mutex — N independent write
pipelines) behind one scatter-gather frontend that speaks the exact
single-server JSON-line protocol: point a :class:`~repro.server.ReproClient`
at :attr:`Cluster.address` and nothing in the client changes.

Layers (bottom up):

* :mod:`repro.cluster.topology` — :class:`ShardMap`: the pure partition
  function (``hash`` on record uid, or ``range`` on interval low
  endpoint with candidate-low-window pruning), serialized into the
  cluster catalog;
* :mod:`repro.cluster.supervisor` — :class:`ShardSupervisor`: spawns,
  probes, watches and gracefully drains the shard processes (or
  in-process thread shards for tests);
* :mod:`repro.cluster.router` — :class:`ShardRouter` (classify, scatter
  over pooled connections, uid-deduped merge, ordered merge for
  ``OrderBy``, early-cutoff ``Limit``, summed ``ios``/``bound``) and
  :class:`ClusterFrontend`, the client-facing server;
* :mod:`repro.cluster.core` — :class:`Cluster`: create/open/start/close,
  ``cluster.json`` persistence, uid-floor adoption on restart.

CLI: ``repro cluster serve --shards N --strategy hash|range`` and
``repro cluster status``.
"""

from repro.cluster.core import TOPOLOGY_FILE, Cluster
from repro.cluster.router import ClusterFrontend, ShardConnection, ShardRouter
from repro.cluster.supervisor import ShardHandle, ShardSupervisor
from repro.cluster.topology import STRATEGIES, ShardMap, mix_uid

__all__ = [
    "STRATEGIES",
    "TOPOLOGY_FILE",
    "Cluster",
    "ClusterFrontend",
    "ShardConnection",
    "ShardHandle",
    "ShardMap",
    "ShardRouter",
    "ShardSupervisor",
    "mix_uid",
]
