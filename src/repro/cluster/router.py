"""``ShardRouter`` + ``ClusterFrontend`` — scatter-gather over N shards.

The frontend is a :class:`~repro.server.core.JsonLineServer` speaking the
**identical wire protocol** as a single ``ReproServer`` — a client cannot
tell the difference.  Behind it, the router holds one pooled
:class:`ShardConnection` per shard and turns each request into per-shard
requests plus a merge:

=============  ===========================================================
request        routing
=============  ===========================================================
``query``      :meth:`~repro.cluster.topology.ShardMap.shards_for_query`
               classifies the algebra tree: single-shard → direct call,
               prunable window (range strategy) → the overlapping slabs,
               otherwise broadcast.  Answers merge by **uid-deduped
               union**, a global sort for a top-level ``OrderBy`` (each
               shard pre-sorts, the router re-sorts the union), an early
               cutoff for ``Limit`` (each shard already capped, the
               router caps the union), and per-shard ``ios``/``bound``
               summed — ``bound`` gains ``+2`` per extra shard so the
               paper's ``BOUND_SLACK`` check stays valid per request
               (k per-shard slacks, not one).
``insert``     the router **mints the authoritative uid**, then routes by
               partition key; the shard honours it (``keep_uids``) — one
               identity per record across the whole cluster.
``delete``     by record: the owning shard.  By query: the classified
               targets; with a ``limit`` the scatter degrades to an
               ordered walk that decrements the remaining budget so the
               cluster never over-deletes.
``bulk_load``  minted uids, split per shard, loaded **in parallel**.
``create``     every shard gets the index (records partitioned as above);
``drop``       broadcast.
``prepare``    leased on the frontend connection (handle + declared
``run``        params, exactly like a single server); ``run`` binds the
               parameters locally — which both validates them and makes
               the *bound* query classifiable — then executes as a read.
               A shard answering ``unknown_index`` invalidates the lease
               into the same structured ``stale_handle`` the single
               server emits.
``stats``      aggregated: engine counters summed, sessions namespaced
               ``s<shard>:<id>``, plus a ``cluster`` section (topology,
               routing counters, shard health).
``shutdown``   acked, then the whole cluster drains (see
               :class:`~repro.cluster.core.Cluster`).
=============  ===========================================================

A shard dying mid-request surfaces as a structured ``shard_unavailable``
error (the supervisor's diagnosis included), never a hang or a torn
client connection.

Locking (ranked in the concurrency linter's table): ``_topology_lock``
and the supervisor's ``_spawn_lock`` are latches; each shard link's
``_rpc_lock`` is a declared **barrier** lock, held across the socket
round-trip by design — it is the per-connection serialization point of
the pool, exactly like the WAL's group-commit sync lock.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.engine.queries import Limit, OrderBy, bind_params, unbound_params
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from repro.server import protocol as P
from repro.server.client import ReproClient, ServerError
from repro.server.core import JsonLineServer, _required, _ShutdownRequested
from repro.cluster.topology import ShardMap


class ShardConnection:
    """A small pool of persistent client connections to one shard.

    ``call`` checks a client out, runs one round-trip, checks it back in;
    concurrent frontend connections therefore fan into a shard over up to
    ``pool_size`` sockets instead of serializing on one.  A transport
    failure closes the failed socket (the pool re-dials lazily, with the
    client's own capped backoff) and propagates — the router turns it
    into ``shard_unavailable``.
    """

    def __init__(
        self,
        shard: int,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        pool_size: int = 8,
    ) -> None:
        self.shard = shard
        self.host = host
        self.port = port
        self._timeout = timeout
        self._pool_size = pool_size
        #: barrier lock: guards the idle pool (and is the serialization
        #: point when callers outnumber pooled sockets)
        self._rpc_lock = threading.Lock()
        self._idle: List[ReproClient] = []

    def call(self, cmd: str, **payload: Any) -> Dict[str, Any]:
        with self._rpc_lock:
            client = self._idle.pop() if self._idle else None
        if client is None:
            client = ReproClient(
                self.host, self.port, timeout=self._timeout, connect_retries=4
            )
        try:
            response = client.call(cmd, **payload)
        except ServerError:
            self._checkin(client)  # structured error; the socket is fine
            raise
        except Exception:
            client.close()
            raise
        self._checkin(client)
        return response

    def _checkin(self, client: ReproClient) -> None:
        with self._rpc_lock:
            if len(self._idle) < self._pool_size:
                self._idle.append(client)
                return
        client.close()

    def close(self) -> None:
        with self._rpc_lock:
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()


def _wire_sort_key(order: OrderBy) -> Callable[[Dict[str, Any]], Any]:
    """A sort key over *wire* records (dicts) for a top-level OrderBy."""
    key = order.key
    if key is None:
        return lambda rec: (rec.get("low"), rec.get("high"), rec.get("uid"))
    if callable(key):
        raise P.ProtocolError(
            "a routed OrderBy needs a field-name key ('low'/'high'), "
            "not a callable"
        )
    return lambda rec: rec.get(key)


class ShardRouter:
    """Scatter-gather execution over a :class:`ShardMap` (see module doc)."""

    def __init__(
        self,
        shard_map: ShardMap,
        links: List[ShardConnection],
        *,
        supervisor: Any = None,
        persist: Optional[Callable[[], None]] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if len(links) != shard_map.shards:
            raise ValueError(
                f"map expects {shard_map.shards} shards, got {len(links)} links"
            )
        self._map = shard_map
        self._links = links
        self._supervisor = supervisor
        self._persist = persist
        #: latch: guards topology mutation (max_length) + the namespace
        self._topology_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._indexes: Set[str] = set()
        self._routing = {
            "reads": 0, "writes": 0, "shard_contacts": 0,
            "single_shard": 0, "pruned": 0, "broadcasts": 0,
        }
        #: shard id -> requests this router sent it (under ``_stats_lock``)
        self._contacts_by_shard: Dict[int, int] = {
            shard: 0 for shard in range(shard_map.shards)
        }
        self._started_monotonic = time.monotonic()
        workers = max_workers or max(8, min(64, shard_map.shards * 8))
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-scatter"
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def shard_map(self) -> ShardMap:
        return self._map

    def bootstrap(self) -> Dict[str, Any]:
        """Adopt what the shards already hold (open of a persisted cluster).

        Seeds the routed namespace from the union of shard catalogs and
        advances this process's uid counters past every resident uid, so
        a restarted router can never re-mint a stored record's identity.
        """
        from repro.engine.core import advance_uid_floor

        info = self.stats()
        advance_uid_floor(int(info["engine"].get("uid_horizon", -1)))
        with self._topology_lock:
            self._indexes.update(info["engine"].get("indexes", []))
        return info

    def known_index(self, name: str) -> bool:
        with self._topology_lock:
            return name in self._indexes

    def known_indexes(self) -> List[str]:
        with self._topology_lock:
            return sorted(self._indexes)

    def close(self) -> None:
        self._executor.shutdown(wait=False)
        for link in self._links:
            link.close()

    # ------------------------------------------------------------------ #
    # the scatter primitive
    # ------------------------------------------------------------------ #
    def _call_shard(self, shard: int, cmd: str, **payload: Any) -> Dict[str, Any]:
        try:
            return self._links[shard].call(cmd, **payload)
        except (ConnectionError, OSError) as exc:
            if self._supervisor is not None:
                # a dead shard gets the supervisor's diagnosis (exit code,
                # drained, never-started); a live-but-flaky one falls through
                self._supervisor.ensure_alive(shard, context=cmd)
            raise P.ShardUnavailableError(
                f"shard {shard} at {self._links[shard].host}:"
                f"{self._links[shard].port} failed during {cmd!r}: {exc}"
            ) from exc

    def _scatter(
        self,
        targets: List[int],
        cmd: str,
        payload_for: Callable[[int], Dict[str, Any]],
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """``cmd`` to every target in parallel; ``[(shard, response)]``.

        All futures are drained even when one fails (no half-abandoned
        requests racing the error path); the first failure then raises.
        """
        if not targets:
            return []
        # child spans attach to the *dispatching* thread's open span: the
        # scatter workers run on the pool, so the parent is captured here
        # and handed across the thread boundary explicitly
        parent = obs_tracer.current_span()
        decision = self._route_decision(len(targets))
        if len(targets) == 1:
            shard = targets[0]
            return [(
                shard,
                self._traced_call(
                    shard, cmd, parent, decision, **payload_for(shard)
                ),
            )]
        futures = [
            (s, self._executor.submit(
                self._traced_call, s, cmd, parent, decision, **payload_for(s)
            ))
            for s in targets
        ]
        out: List[Tuple[int, Dict[str, Any]]] = []
        error: Optional[BaseException] = None
        for shard, future in futures:
            try:
                out.append((shard, future.result()))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return out

    def _route_decision(self, contacted: int) -> str:
        """Classify one request's fan-out (what the routing counters count)."""
        if contacted == 1:
            return "single_shard"
        if contacted >= self._map.shards > 1:
            return "broadcast"
        return "pruned"

    def _traced_call(
        self,
        shard: int,
        cmd: str,
        parent: Any,
        decision: str,
        **payload: Any,
    ) -> Dict[str, Any]:
        """One shard leg of a scatter, bracketed by its own child span.

        The router performs no block I/O of its own, so the leg's ``ios``
        are annotated from the shard's response rather than measured
        through a sink.
        """
        with obs_tracer.span(
            "shard.call", parent=parent, shard=shard, cmd=cmd, route=decision
        ) as sp:
            resp = self._call_shard(shard, cmd, **payload)
            sp.annotate(ios=resp.get("ios", 0))
            return resp

    def _count(self, kind: str, shards: List[int]) -> None:
        contacted = len(shards)
        with self._stats_lock:
            self._routing[kind] += 1
            self._routing["shard_contacts"] += contacted
            for shard in shards:
                self._contacts_by_shard[shard] = (
                    self._contacts_by_shard.get(shard, 0) + 1
                )
            if contacted == 1:
                self._routing["single_shard"] += 1
            elif contacted >= self._map.shards > 1:
                self._routing["broadcasts"] += 1
            else:
                self._routing["pruned"] += 1

    def _note_records(self, records: List[Any]) -> None:
        with self._topology_lock:
            grew = self._map.note_records(records)
            if grew and self._persist is not None:
                # eager persistence: the pruning window must never lag a
                # resident record across a crash
                self._persist()

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def read(self, index: str, q: Any) -> Dict[str, Any]:
        """Classify, scatter, merge one query; the response payload."""
        targets = self._map.shards_for_query(q)
        wire = P.query_to_wire(q)
        pairs = self._scatter(
            targets, "query", lambda s: {"index": index, "q": wire}
        )
        self._count("reads", [shard for shard, _resp in pairs])
        return self._merge_read(q, pairs)

    def _merge_read(
        self, q: Any, pairs: List[Tuple[int, Dict[str, Any]]]
    ) -> Dict[str, Any]:
        records: List[Dict[str, Any]] = []
        seen: Set[Any] = set()
        for _shard, resp in pairs:
            for rec in resp.get("records", []):
                uid = rec.get("uid")
                if uid is not None:
                    if uid in seen:
                        continue
                    seen.add(uid)
                records.append(rec)
        # peel the top-level modifier chain: every Limit caps the union,
        # the outermost OrderBy decides the final order
        cap: Optional[int] = None
        order: Optional[OrderBy] = None
        node = q
        while isinstance(node, (Limit, OrderBy)):
            if isinstance(node, Limit):
                cap = node.n if cap is None else min(cap, node.n)
            elif order is None:
                order = node
            node = node.part
        if order is not None:
            records.sort(key=_wire_sort_key(order), reverse=bool(order.reverse))
        if cap is not None:
            records = records[:max(cap, 0)]
        stats: Dict[str, Any] = {}
        for _shard, resp in pairs:
            for key, value in resp.get("stats", {}).items():
                if isinstance(value, (int, float)):
                    stats[key] = stats.get(key, 0) + value
        payload: Dict[str, Any] = {
            "ios": sum(resp.get("ios", 0) for _s, resp in pairs),
            "stats": stats,
            "records": records,
            "count": len(records),
            "shards_contacted": len(pairs),
        }
        bounds = [resp.get("bound") for _s, resp in pairs]
        if not pairs:
            payload["bound"] = 0
        elif all(b is not None for b in bounds):
            # k per-shard bounds each carry their own page slack; fold the
            # extra (k-1) slacks in so BOUND_SLACK * bound + pages still
            # dominates the summed ios
            payload["bound"] = sum(bounds) + 2 * (len(pairs) - 1)
        return payload

    def explain(self, index: str, q: Any) -> Dict[str, Any]:
        targets = self._map.shards_for_query(q) or self._map.all_shards()
        resp = self._call_shard(
            targets[0], "explain", index=index, q=P.query_to_wire(q)
        )
        plan = dict(resp.get("plan", {}))
        plan["shards"] = len(targets)
        plan["describe"] = (
            f"cluster[{len(targets)}/{self._map.shards} shards] "
            + str(plan.get("describe", ""))
        )
        return {"plan": plan}

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def insert(self, index: str, record_data: Dict[str, Any]) -> Dict[str, Any]:
        record = P.record_from_dict(record_data, fresh_uid=True)
        self._note_records([record])
        shard = self._map.shard_for_record(record)
        wire = P.record_to_dict(record)
        resp = self._call_shard(shard, "insert", index=index, record=wire,
                                keep_uids=True)
        self._count("writes", [shard])
        return {
            "record": resp.get("record", wire),
            "ios": resp.get("ios", 0),
            "shard": shard,
        }

    def delete_record(self, index: str, record_data: Dict[str, Any]) -> Dict[str, Any]:
        record = P.record_from_dict(record_data)  # the wire uid is the name
        shard = self._map.shard_for_record(record)
        resp = self._call_shard(
            shard, "delete", index=index, record=P.record_to_dict(record)
        )
        self._count("writes", [shard])
        return {
            "removed": resp.get("removed", 0),
            "ios": resp.get("ios", 0),
            "shard": shard,
        }

    def delete_matching(
        self, index: str, q: Any, limit: Optional[int]
    ) -> Dict[str, Any]:
        targets = self._map.shards_for_query(q)
        wire = P.query_to_wire(q)
        pairs: List[Tuple[int, Dict[str, Any]]]
        if limit is None:
            pairs = self._scatter(
                targets, "delete", lambda s: {"index": index, "q": wire}
            )
        else:
            # a capped delete must not over-delete across shards: walk the
            # targets in order, shrinking the remaining budget as we go
            pairs = []
            remaining = limit
            for shard in targets:
                if remaining <= 0:
                    break
                resp = self._call_shard(
                    shard, "delete", index=index, q=wire, limit=remaining
                )
                pairs.append((shard, resp))
                remaining -= resp.get("removed", 0)
        self._count("writes", [shard for shard, _resp in pairs])
        return {
            "removed": sum(r.get("removed", 0) for _s, r in pairs),
            "records": [rec for _s, r in pairs for rec in r.get("records", [])],
            "ios": sum(r.get("ios", 0) for _s, r in pairs),
            "shards_contacted": len(pairs),
        }

    def bulk_load(self, index: str, records_data: List[Any]) -> Dict[str, Any]:
        records = P.records_from_wire(records_data, fresh_uid=True)
        self._note_records(records)
        groups = self._map.partition(records)
        targets = sorted(groups)
        pairs = self._scatter(
            targets,
            "bulk_load",
            lambda s: {
                "index": index,
                "records": P.records_to_wire(groups[s]),
                "keep_uids": True,
            },
        )
        self._count("writes", [shard for shard, _resp in pairs])
        return {
            "loaded": len(records),
            # echo in submission order with the router's authoritative uids
            "records": P.records_to_wire(records),
            "ios": sum(r.get("ios", 0) for _s, r in pairs),
            "shards_contacted": len(pairs),
        }

    # ------------------------------------------------------------------ #
    # namespace
    # ------------------------------------------------------------------ #
    def create(
        self, index: str, kind: str, records_data: List[Any], dynamic: bool
    ) -> Dict[str, Any]:
        if kind not in ("collection", "interval"):
            raise P.ProtocolError(
                f"unknown index kind {kind!r}; know ['collection', 'interval']"
            )
        records = P.records_from_wire(records_data, fresh_uid=True)
        self._note_records(records)
        groups = self._map.partition(records)
        pairs = self._scatter(
            self._map.all_shards(),
            "create",
            lambda s: {
                "index": index,
                "kind": kind,
                "dynamic": dynamic,
                "records": P.records_to_wire(groups.get(s, [])),
                "keep_uids": True,
            },
        )
        with self._topology_lock:
            self._indexes.add(index)
        return {
            "index": index,
            "kind": kind,
            "loaded": len(records),
            "ios": sum(r.get("ios", 0) for _s, r in pairs),
        }

    def drop(self, index: str) -> Dict[str, Any]:
        pairs = self._scatter(
            self._map.all_shards(), "drop", lambda s: {"index": index}
        )
        with self._topology_lock:
            self._indexes.discard(index)
        return {
            "dropped": index,
            "ios": sum(r.get("ios", 0) for _s, r in pairs),
        }

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        pairs = self._scatter(self._map.all_shards(), "stats", lambda s: {})
        indexes: Set[str] = set()
        blocks = 0
        uid_horizon = -1
        block_size: Optional[int] = None
        numeric: Dict[str, Any] = {}
        sessions: Dict[str, Any] = {}
        retired = {"sessions": 0, "requests": 0, "ios": 0}
        per_shard: List[Dict[str, Any]] = []
        for shard, resp in pairs:
            engine = resp.get("engine", {})
            if block_size is None:
                block_size = engine.get("block_size")
            indexes.update(engine.get("indexes", []))
            blocks += engine.get("blocks", 0)
            uid_horizon = max(uid_horizon, engine.get("uid_horizon", -1))
            for key, value in engine.items():
                if key in ("block_size", "indexes", "blocks", "uid_horizon"):
                    continue
                if isinstance(value, (int, float)):
                    numeric[key] = numeric.get(key, 0) + value
            for sid, sess in resp.get("sessions", {}).items():
                sessions[f"s{shard}:{sid}"] = sess
            for key in retired:
                retired[key] += resp.get("retired", {}).get(key, 0)
            per_shard.append({
                "shard": shard,
                "epochs": resp.get("epochs"),
                "wal": resp.get("wal"),
                "uptime_s": resp.get("uptime_s"),
            })
        with self._stats_lock:
            routing = dict(self._routing)
            contacts = dict(self._contacts_by_shard)
        for entry in per_shard:
            entry["contacts"] = contacts.get(entry["shard"], 0)
        with self._topology_lock:
            topology = self._map.as_dict()
        health = (
            self._supervisor.status() if self._supervisor is not None
            else [
                {"shard": link.shard, "address": f"{link.host}:{link.port}"}
                for link in self._links
            ]
        )
        return {
            "retired": retired,
            "sessions": sessions,
            "engine": {
                "block_size": block_size,
                "indexes": sorted(indexes),
                "blocks": blocks,
                "uid_horizon": uid_horizon,
                **numeric,
            },
            "cluster": {
                "topology": topology,
                "routing": routing,
                "contacts_by_shard": {str(k): v for k, v in sorted(contacts.items())},
                "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
                "shards": health,
                "per_shard": per_shard,
            },
        }

    def metrics(self) -> Dict[str, Any]:
        """Cluster-wide ``metrics``: shard metrics plus the router's own.

        Plan-cache and WAL counters are summed across shards so the
        headline ratios describe the cluster, with each shard's full
        response preserved under ``shards`` for drill-down.
        """
        pairs = self._scatter(self._map.all_shards(), "metrics", lambda s: {})
        cache = {"entries": 0, "hits": 0, "misses": 0}
        wal = {"commits": 0, "syncs": 0, "group_absorbed": 0}
        wal_seen = False
        shards: List[Dict[str, Any]] = []
        for shard, resp in pairs:
            shard_cache = resp.get("plan_cache") or {}
            for key in cache:
                cache[key] += int(shard_cache.get(key, 0) or 0)
            shard_wal = resp.get("wal")
            if shard_wal:
                wal_seen = True
                for key in wal:
                    wal[key] += int(shard_wal.get(key, 0) or 0)
            shards.append({
                "shard": shard,
                "uptime_s": resp.get("uptime_s"),
                "plan_cache": shard_cache or None,
                "wal": shard_wal,
                "epochs": resp.get("epochs"),
                "metrics": resp.get("metrics"),
                "tracer": resp.get("tracer"),
            })
        lookups = cache["hits"] + cache["misses"]
        plan_cache: Dict[str, Any] = dict(cache)
        plan_cache["hit_ratio"] = (
            round(cache["hits"] / lookups, 6) if lookups else None
        )
        wal_summary: Optional[Dict[str, Any]] = None
        if wal_seen:
            wal_summary = dict(wal)
            wal_summary["group_absorbed_ratio"] = (
                round(wal["group_absorbed"] / wal["commits"], 6)
                if wal["commits"] else None
            )
        with self._stats_lock:
            routing = dict(self._routing)
            contacts = dict(self._contacts_by_shard)
        return {
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "plan_cache": plan_cache,
            "wal": wal_summary,
            "metrics": obs_metrics.REGISTRY.snapshot(),
            "tracer": obs_tracer.TRACER.stats_dict(),
            "cluster": {
                "routing": routing,
                "contacts_by_shard": {str(k): v for k, v in sorted(contacts.items())},
            },
            "shards": shards,
        }


class _RouterConnection:
    """One frontend connection's leases (mirrors the single server's)."""

    __slots__ = ("conn_id", "leases", "lease_ids", "requests")

    def __init__(self, conn_id: int) -> None:
        self.conn_id = conn_id
        self.leases: Dict[int, Dict[str, Any]] = {}
        self.lease_ids = itertools.count(1)
        self.requests = 0


class ClusterFrontend(JsonLineServer):
    """The cluster's client-facing server: protocol in, router out."""

    thread_name = "repro-cluster"

    def __init__(
        self,
        router: ShardRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        close_router: bool = False,
    ) -> None:
        super().__init__(host, port)
        self.router = router
        self._close_router = close_router
        self._conn_ids = itertools.count(1)

    def __enter__(self) -> "ClusterFrontend":
        self.start()
        return self

    def _on_close(self) -> None:
        if self._close_router:
            self.router.close()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def _open_connection(self) -> _RouterConnection:
        return _RouterConnection(next(self._conn_ids))

    def _dispatch_message(
        self, conn: _RouterConnection, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        cmd = message.get("cmd")
        request_id = message.get("id")
        handler = getattr(self, f"_cmd_{cmd}", None) if isinstance(cmd, str) else None
        if handler is None:
            raise P.ProtocolError(
                f"unknown command {cmd!r}; know {sorted(P.COMMANDS)}"
            )
        conn.requests += 1
        obs_metrics.REGISTRY.counter(f"router.ops.{cmd}").inc()
        t0 = time.perf_counter()
        with obs_tracer.span("router.request", cmd=cmd, conn=conn.conn_id):
            response = handler(conn, request_id, message)
        obs_metrics.REGISTRY.histogram(f"router.latency_ms.{cmd}").observe(
            (time.perf_counter() - t0) * 1e3
        )
        return response

    # -- control --------------------------------------------------------- #
    def _cmd_ping(self, conn: _RouterConnection, request_id: Any,
                  message: Dict[str, Any]) -> Dict[str, Any]:
        shard_map = self.router.shard_map
        return P.ok_response(
            request_id, pong=True, version=P.PROTOCOL_VERSION,
            session=conn.conn_id,
            cluster={"shards": shard_map.shards, "strategy": shard_map.strategy},
        )

    def _cmd_shutdown(self, conn: _RouterConnection, request_id: Any,
                      message: Dict[str, Any]) -> Dict[str, Any]:
        raise _ShutdownRequested

    # -- namespace ------------------------------------------------------- #
    def _cmd_create(self, conn: _RouterConnection, request_id: Any,
                    message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        payload = self.router.create(
            name,
            message.get("kind", "collection"),
            message.get("records", []),
            bool(message.get("dynamic", True)),
        )
        return P.ok_response(request_id, **payload)

    def _cmd_drop(self, conn: _RouterConnection, request_id: Any,
                  message: Dict[str, Any]) -> Dict[str, Any]:
        return P.ok_response(
            request_id, **self.router.drop(_required(message, "index"))
        )

    # -- reads ----------------------------------------------------------- #
    def _cmd_query(self, conn: _RouterConnection, request_id: Any,
                   message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        q = P.query_from_wire(_required(message, "q"))
        return P.ok_response(request_id, **self.router.read(name, q))

    def _cmd_explain(self, conn: _RouterConnection, request_id: Any,
                     message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        q = P.query_from_wire(_required(message, "q"))
        return P.ok_response(request_id, **self.router.explain(name, q))

    def _cmd_prepare(self, conn: _RouterConnection, request_id: Any,
                     message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        q = P.query_from_wire(_required(message, "q"))
        if not self.router.known_index(name):
            raise KeyError(
                f"no index named {name!r}; the cluster serves "
                f"{self.router.known_indexes()}"
            )
        params = sorted(unbound_params(q))
        handle = next(conn.lease_ids)
        conn.leases[handle] = {"index": name, "q": q, "params": params}
        return P.ok_response(request_id, handle=handle, index=name, params=params)

    def _cmd_run(self, conn: _RouterConnection, request_id: Any,
                 message: Dict[str, Any]) -> Dict[str, Any]:
        handle = _required(message, "handle")
        lease = conn.leases.get(handle)
        if lease is None:
            raise P.StaleHandleError(
                f"no prepared handle {handle!r} on this connection; "
                "handles are leased per connection by 'prepare'"
            )
        params = message.get("params", {})
        if not isinstance(params, dict):
            raise P.ProtocolError("'params' must be an object of name -> value")
        bound = bind_params(lease["q"], params)  # strict: bad names raise
        try:
            payload = self.router.read(lease["index"], bound)
        except ServerError as exc:
            if exc.code == "unknown_index":
                # the index this lease was planned against is gone: same
                # invalidation surface as the single server
                conn.leases.pop(handle, None)
                raise P.StaleHandleError(
                    f"prepared handle {handle} is stale: "
                    + (exc.args[0] if exc.args else repr(exc))
                ) from exc
            raise
        return P.ok_response(request_id, **payload)

    # -- writes ---------------------------------------------------------- #
    def _cmd_insert(self, conn: _RouterConnection, request_id: Any,
                    message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        payload = self.router.insert(name, _required(message, "record"))
        return P.ok_response(request_id, **payload)

    def _cmd_delete(self, conn: _RouterConnection, request_id: Any,
                    message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        if "record" in message:
            payload = self.router.delete_record(name, message["record"])
        elif "q" in message:
            q = P.query_from_wire(message["q"])
            payload = self.router.delete_matching(name, q, message.get("limit"))
        else:
            raise P.ProtocolError("'delete' takes a 'record' or a 'q' selector")
        return P.ok_response(request_id, **payload)

    def _cmd_bulk_load(self, conn: _RouterConnection, request_id: Any,
                       message: Dict[str, Any]) -> Dict[str, Any]:
        name = _required(message, "index")
        payload = self.router.bulk_load(name, _required(message, "records"))
        return P.ok_response(request_id, **payload)

    # -- accounting ------------------------------------------------------ #
    def _cmd_stats(self, conn: _RouterConnection, request_id: Any,
                   message: Dict[str, Any]) -> Dict[str, Any]:
        payload = self.router.stats()
        payload["session"] = {"id": conn.conn_id, "requests": conn.requests}
        return P.ok_response(request_id, **payload)

    def _cmd_metrics(self, conn: _RouterConnection, request_id: Any,
                     message: Dict[str, Any]) -> Dict[str, Any]:
        payload = self.router.metrics()
        payload["session"] = {"id": conn.conn_id, "requests": conn.requests}
        return P.ok_response(request_id, **payload)
