"""Blocked (external-memory) priority search trees.

Lemma 4.1 (after Icking, Klein and Ottmann [17]) states that a priority
search tree in which every node holds ``B`` points answers 3-sided queries
in ``O(log2 n + t/B)`` I/Os using ``O(n/B)`` blocks, and can be built in
``O((n/B) log_B n)`` I/Os.  The class-indexing structures of Section 4 use
these trees as the per-metablock and per-sibling-group "3-sided
structures".
"""

from repro.pst.external_pst import ExternalPST

__all__ = ["ExternalPST"]
