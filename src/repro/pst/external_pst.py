"""A static blocked priority search tree for 3-sided queries (Lemma 4.1).

Structure
---------
The tree is binary on the x-dimension.  Every node occupies one disk block
holding the ``B`` points with the largest y values among the points of its
subtree that no ancestor holds; the remaining points are split by the median
x value between the two children.  This is exactly the "priority search tree
where each node contains B points" described in Lemma 4.1 [17].

A 3-sided query ``x1 <= x <= x2, y >= y0`` walks the at most two root-to-leaf
search paths for ``x1`` and ``x2`` (``O(log2 n)`` blocks) and, for every
subtree completely inside ``[x1, x2]``, descends only while nodes keep
producing output (every such block read either yields ``B`` reported points
or terminates a branch), giving ``O(log2 n + t/B)`` I/Os.

The structure is static; the metablock-tree variants that need insertions
rebuild their (small, ``O(B^2)``/``O(B^3)``-point) external PSTs wholesale,
exactly as prescribed by Lemma 4.4.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional

from repro.analysis.complexity import external_pst_query_bound
from repro.io.disk import BlockId
from repro.metablock.geometry import PlanarPoint, ThreeSidedQuery


class ExternalPST:
    """Static blocked priority search tree over :class:`PlanarPoint` records."""

    def __init__(self, disk, points: Iterable[PlanarPoint] = ()) -> None:
        self.disk = disk
        self.B = disk.block_size
        pts = list(points)
        self.size = len(pts)
        self._block_ids: List[BlockId] = []
        self.root_id: Optional[BlockId] = None
        #: plan-cache key: the wholesale rebuild in :meth:`insert` replaces
        #: every block, so cached strategies must re-validate after it
        self.generation = 0
        if pts:
            ordered = sorted(pts, key=lambda p: (p.x, p.y))
            self.root_id = self._build(ordered)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, pts: List[PlanarPoint]) -> Optional[BlockId]:
        """Build recursively from points sorted by x; returns the root block id."""
        if not pts:
            return None
        by_y = sorted(pts, key=lambda p: (p.y, p.x), reverse=True)
        top = by_y[: self.B]
        top_ids = set(id(p) for p in top)
        rest = [p for p in pts if id(p) not in top_ids]  # keeps x order
        mid = len(pts) // 2
        split_x = pts[mid].x
        left_pts = [p for p in rest if p.x < split_x]
        right_pts = [p for p in rest if p.x >= split_x]
        # With many equal x values one side can be empty; recursion still
        # terminates because every level removes its top B points, and the
        # search-tree invariant (left strictly below split_x) is preserved.

        left_id = self._build(left_pts)
        right_id = self._build(right_pts)
        block = self.disk.allocate(
            records=list(top),
            header={
                "split_x": split_x,
                "left": left_id,
                "right": right_id,
                "min_y": min(p.y for p in top),
            },
        )
        self._block_ids.append(block.block_id)
        return block.block_id

    # ------------------------------------------------------------------ #
    # updates (wholesale rebuild, as prescribed by Lemma 4.4)
    # ------------------------------------------------------------------ #
    def insert(self, point: PlanarPoint) -> None:
        """Insert one point by rebuilding the structure (``O(n/B)`` I/Os).

        The paper never inserts into a blocked PST in place: the metablock
        variants keep their external PSTs small (``O(B^2)``/``O(B^3)``
        points) and rebuild them wholesale (Lemma 4.4).  This method is that
        rebuild, exposed so the PST satisfies the uniform ``Index`` surface.
        """
        pts = self._collect_points()
        pts.append(point)
        self.destroy()
        self.generation += 1
        ordered = sorted(pts, key=lambda p: (p.x, p.y))
        self.size = len(ordered)
        self.root_id = self._build(ordered)

    def _collect_points(self) -> List[PlanarPoint]:
        """Read every block back from disk (the rebuild's ``O(n/B)`` scan)."""
        out: List[PlanarPoint] = []
        for bid in self._block_ids:
            out.extend(self.disk.read(bid).records)
        return out

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query_3sided(self, x1: Any, x2: Any, y0: Any) -> List[PlanarPoint]:
        """All points with ``x1 <= x <= x2`` and ``y >= y0``."""
        return list(self.iter_3sided(x1, x2, y0))

    def iter_3sided(self, x1: Any, x2: Any, y0: Any) -> Iterator[PlanarPoint]:
        """Stream the 3-sided answer, reading one node block at a time."""
        return self._iter_query(self.root_id, x1, x2, y0)

    def query(self, q: Any) -> "Any":
        """Answer a query descriptor with a lazy ``QueryResult``.

        Accepts :class:`~repro.metablock.geometry.ThreeSidedQuery` (and,
        via the engine, anything with ``x1``/``x2``/``y0`` fields).
        """
        from repro.engine.result import QueryResult

        if not isinstance(q, ThreeSidedQuery):
            raise TypeError(f"ExternalPST cannot answer {type(q).__name__} queries")
        n, b = max(self.size, 2), self.B
        return QueryResult(
            lambda: self.iter_3sided(q.x1, q.x2, q.y0),
            disk=self.disk,
            bound=lambda t: external_pst_query_bound(n, b, t),
            label=f"pst:3sided[{q.x1},{q.x2}]x[{q.y0},inf)",
        )

    def supports(self, q: Any) -> bool:
        """3-sided query shapes (Lemma 4.1)."""
        return isinstance(q, ThreeSidedQuery)

    def cost(self, q: Any) -> "Any":
        """Lemma 4.1: ``O(log2 n + t/B)`` I/Os per 3-sided query."""
        from repro.engine.protocols import Bound

        n, b = max(self.size, 2), self.B
        return Bound.of("log2 n + t/B", lambda t: external_pst_query_bound(n, b, t))

    def query_2sided(self, x_max: Any, y_min: Any) -> List[PlanarPoint]:
        """All points with ``x <= x_max`` and ``y >= y_min``."""
        return list(self._iter_query(self.root_id, None, x_max, y_min))

    def _iter_query(
        self,
        block_id: Optional[BlockId],
        x1: Optional[Any],
        x2: Any,
        y0: Any,
    ) -> Iterator[PlanarPoint]:
        if block_id is None:
            return
        block = self.disk.read(block_id)
        for p in block.records:
            if p.y < y0:
                continue
            if (x1 is None or p.x >= x1) and p.x <= x2:
                yield p
        # every point below this node has y <= the smallest y stored here;
        # stop when even the stored points dip below the query bottom
        if block.header["min_y"] < y0:
            return
        split_x = block.header["split_x"]
        if x1 is None or x1 < split_x:
            yield from self._iter_query(block.header["left"], x1, x2, y0)
        if x2 >= split_x:
            yield from self._iter_query(block.header["right"], x1, x2, y0)

    # ------------------------------------------------------------------ #
    # accounting / lifecycle
    # ------------------------------------------------------------------ #
    def io_stats(self):
        """Live I/O counters of the backing store."""
        return self.disk.stats

    def block_count(self) -> int:
        return len(self._block_ids)

    def destroy(self) -> None:
        for bid in self._block_ids:
            self.disk.free(bid)
        self._block_ids = []
        self.root_id = None
        self.size = 0

    def __len__(self) -> int:
        return self.size
