"""A file-backed page store: the paper's disk model over real disk pages.

:class:`FileDisk` implements the same :class:`~repro.io.backend.StorageBackend`
contract as :class:`~repro.io.disk.SimulatedDisk`, but every block lives in
an append-only page file on the real filesystem.  Reads seek and
deserialize; writes append a fresh version of the page and advance the
in-memory offset table (a tiny log-structured store).  I/O accounting is
identical to the simulated disk, so every bound-checking experiment runs
unchanged against real pages.

Because a read deserializes a *fresh copy* of the page, ``FileDisk`` is the
honest implementation of the disk contract: structures that forget a
``write`` after mutating a page, or that rely on two reads aliasing the
same Python object, fail loudly here.  The repository's structures carry
stable record uids (see :class:`~repro.metablock.geometry.PlanarPoint`)
precisely so that identity-based deduplication survives the round-trip.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.analysis import lockdep
from repro.io.counters import IOStats, Measurement
from repro.io.disk import Block, BlockId


class FileDisk:
    """An append-only, pickle-serialized page file with I/O counting.

    Parameters
    ----------
    path:
        Page-file location.  When omitted, a temporary file is created and
        removed again on :meth:`close`.  Constructing always starts from an
        empty file: a *non-empty* existing file is refused unless
        ``overwrite=True`` — reattach to an existing database with
        :meth:`FileDisk.open` instead.
    block_size:
        The page capacity ``B`` in records, as for ``SimulatedDisk``.
    overwrite:
        Allow truncating a non-empty existing file at ``path``.

    Notes
    -----
    * The offset table (block id -> byte extent) lives in memory while the
      disk is open; :meth:`sync` — called automatically by :meth:`close` —
      persists it (together with the free-form :attr:`meta` dictionary the
      :class:`~repro.engine.Engine` stores its catalog root in) to a
      ``<path>.meta`` sidecar, which is what makes a named page file a
      reopenable database rather than per-process scratch space.
    * Overwriting a page appends a new version; :meth:`compact` reclaims
      the superseded extents.  ``blocks_in_use`` counts live blocks, which
      is the quantity the paper's space bounds are about.
    """

    def __init__(
        self, path: Optional[str] = None, block_size: int = 16, *, overwrite: bool = False
    ) -> None:
        if block_size < 2:
            raise ValueError("block_size must be at least 2")
        self.block_size = block_size
        self.stats = IOStats()
        self._extents: Dict[BlockId, Tuple[int, int]] = {}
        self._capacities: Dict[BlockId, int] = {}
        self._next_id: BlockId = 0
        self._owns_file = path is None
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-filedisk-", suffix=".pages")
            os.close(fd)
        elif not overwrite and os.path.exists(path) and os.path.getsize(path) > 0:
            raise ValueError(
                f"refusing to truncate non-empty page file {path!r}; "
                "pass overwrite=True to allow it"
            )
        self.path = path
        #: free-form, sidecar-persisted metadata (the engine catalog root
        #: pointer lives here); not part of the block space or I/O counts
        self.meta: Dict[str, Any] = {}
        self._file = open(path, "w+b")
        self._end = 0
        self._closed = False
        #: serializes seek+read/seek+write pairs on the shared file handle
        #: (and the extent-table updates next to them) — concurrent reader
        #: sessions issue parallel block reads through one FileDisk
        self._io_lock = threading.RLock()

    @classmethod
    def open(cls, path: str) -> "FileDisk":
        """Reattach to a page file written (and closed) by a prior process.

        Loads the ``<path>.meta`` sidecar that :meth:`sync` wrote — offset
        table, capacities, allocation cursor and the :attr:`meta`
        dictionary — and reopens the page file in place.  Raises
        :class:`FileNotFoundError` when either file is missing.
        """
        with open(cls._meta_path_for(path), "rb") as fh:
            # the sidecar is constant-size control information, exactly like
            # the block headers — not an I/O in the model (see :meth:`sync`)
            # lint: allow(uncounted-io)
            state = pickle.loads(fh.read())
        disk = cls.__new__(cls)
        disk.block_size = state["block_size"]
        disk.stats = IOStats()
        disk._extents = dict(state["extents"])
        disk._capacities = dict(state["capacities"])
        disk._next_id = state["next_id"]
        disk._owns_file = False
        disk.path = path
        disk.meta = dict(state["meta"])
        disk._file = open(path, "r+b")
        disk._end = state["end"]
        disk._closed = False
        disk._io_lock = threading.RLock()
        return disk

    @staticmethod
    def _meta_path_for(path: str) -> str:
        return path + ".meta"

    @property
    def persistent(self) -> bool:
        """Whether this disk outlives the process (named path + sidecar)."""
        return not self._owns_file

    @property
    def closed(self) -> bool:
        return self._closed

    def sync(self) -> None:
        """Persist the offset table and :attr:`meta` to the sidecar file.

        A no-op for anonymous temporary disks (they are scratch space by
        contract).  Sidecar maintenance is not an I/O in the model: it is
        constant-size control information, exactly like the block headers.

        Durability contract: the page file is flushed **and fsynced**
        before the sidecar is written, and the sidecar itself is written
        atomically (temp file + ``os.replace``) and fsynced — a crash
        leaves either the previous consistent (pages, sidecar) pair or the
        new one, never a sidecar describing pages that were lost in a
        buffer.  The two barriers are counted as ``fsyncs`` (not I/Os).
        """
        if self._owns_file or self._closed:
            return
        with self._io_lock:
            state = {
                "block_size": self.block_size,
                "extents": dict(self._extents),
                "capacities": dict(self._capacities),
                "next_id": self._next_id,
                "end": self._end,
                "meta": self.meta,
            }
            self._file.flush()
            fileno = self._file.fileno()
        # the fsync runs *outside* _io_lock: the snapshot above is already
        # consistent (flush happened under the lock), and holding the page
        # lock across a platter barrier would stall every concurrent
        # read/write for the fsync's duration — the exact pathology the
        # blocking-under-mutex lint rule exists to catch
        lockdep.notify_blocking("filedisk.sync")
        os.fsync(fileno)
        sidecar = self._meta_path_for(self.path)
        tmp = sidecar + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, sidecar)
        self.stats.count(fsyncs=2)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def _append(self, block: Block) -> None:
        payload = pickle.dumps(
            (block.capacity, block.records, block.header), protocol=pickle.HIGHEST_PROTOCOL
        )
        with self._io_lock:
            self._file.seek(self._end)
            self._file.write(payload)
            self._extents[block.block_id] = (self._end, len(payload))
            self._capacities[block.block_id] = block.capacity
            self._end += len(payload)

    def _load(self, block_id: BlockId) -> Block:
        with self._io_lock:
            try:
                offset, length = self._extents[block_id]
            except KeyError as exc:
                raise KeyError(f"no such block: {block_id}") from exc
            self._file.seek(offset)
            raw = self._file.read(length)
        capacity, records, header = pickle.loads(raw)
        return Block(block_id, capacity, records, header)

    # ------------------------------------------------------------------ #
    # StorageBackend surface
    # ------------------------------------------------------------------ #
    def allocate(
        self,
        records: Optional[List[Any]] = None,
        header: Optional[Dict[str, Any]] = None,
        capacity: Optional[int] = None,
    ) -> Block:
        """Allocate a new block and persist it (one write I/O)."""
        self._check_open()
        with self._io_lock:
            block_id = self._next_id
            self._next_id += 1
            block = Block(block_id, capacity or self.block_size, records, header)
            self._append(block)
        self.stats.count(allocations=1, writes=1)
        return block

    def free(self, block_id: BlockId) -> None:
        """Release a block.  Freeing is not an I/O; space is reclaimed by compact()."""
        with self._io_lock:
            if block_id not in self._extents:
                return
            del self._extents[block_id]
            del self._capacities[block_id]
        self.stats.count(frees=1)

    def read(self, block_id: BlockId) -> Block:
        """Read and deserialize a block from the page file (one I/O)."""
        self._check_open()
        block = self._load(block_id)
        self.stats.count(reads=1)
        return block

    def write(self, block: Block) -> None:
        """Persist a block (one I/O; appends a new page version)."""
        self._check_open()
        if block.block_id not in self._extents:
            raise KeyError(f"no such block: {block.block_id}")
        if len(block.records) > block.capacity:
            raise ValueError(
                f"block {block.block_id} overfull: "
                f"{len(block.records)} > capacity {block.capacity}"
            )
        self._append(block)
        self.stats.count(writes=1)

    def peek(self, block_id: BlockId) -> Block:
        """Deserialize a block without counting an I/O (tests/invariants only)."""
        self._check_open()
        return self._load(block_id)

    # ------------------------------------------------------------------ #
    # accounting helpers (same surface as SimulatedDisk)
    # ------------------------------------------------------------------ #
    @property
    def blocks_in_use(self) -> int:
        return len(self._extents)

    def block_ids(self) -> List[BlockId]:
        return list(self._extents.keys())

    @contextmanager
    def measure(self) -> Iterator[Measurement]:
        measurement = Measurement(before=self.stats.snapshot())
        try:
            yield measurement
        finally:
            measurement.after = self.stats.snapshot()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def file_bytes(self) -> int:
        """Current size of the page file, including superseded versions."""
        return self._end

    def compact(self) -> int:
        """Rewrite the page file keeping only live block versions.

        Returns the number of bytes reclaimed.  Not an I/O in the model (it
        is maintenance, not query/update work).
        """
        self._check_open()
        before = self._end
        live = {bid: self._load(bid) for bid in self._extents}
        self._file.seek(0)
        self._file.truncate()
        self._end = 0
        for block in live.values():
            self._append(block)
        return before - self._end

    def close(self) -> None:
        """Sync the sidecar, then close the page file (temporaries are deleted)."""
        if self._closed:
            return
        self.sync()
        self._closed = True
        self._file.close()
        if self._owns_file:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"FileDisk({self.path!r}) is closed")

    def __enter__(self) -> "FileDisk":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FileDisk(path={self.path!r}, B={self.block_size}, "
            f"blocks={self.blocks_in_use}, {self.stats})"
        )
