"""LRU buffer pool over a :class:`~repro.io.disk.SimulatedDisk`.

The paper assumes ``O(B^2)`` units of main memory, i.e. roughly ``B``
resident pages (Section 1.1).  :class:`BufferManager` models that memory:
reads of resident pages are cache hits and cost no I/O, evictions of dirty
pages cost a write.

All external structures accept either a raw :class:`SimulatedDisk` (cold
cache, worst-case counts — the default used in benchmarks) or a
:class:`BufferManager` wrapping one.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Set

from repro.io.disk import Block, BlockId, SimulatedDisk


class BufferManager:
    """A write-back LRU cache of disk pages.

    Parameters
    ----------
    disk:
        The underlying simulated disk.
    capacity_pages:
        Number of pages that fit in main memory.  Defaults to the page size
        ``B``, matching the paper's ``O(B^2)`` words of memory assumption.
    """

    def __init__(self, disk: SimulatedDisk, capacity_pages: Optional[int] = None) -> None:
        if capacity_pages is not None and capacity_pages < 1:
            raise ValueError("capacity_pages must be positive")
        self.disk = disk
        self.capacity_pages = capacity_pages if capacity_pages is not None else disk.block_size
        self._cache: "OrderedDict[BlockId, Block]" = OrderedDict()
        self._dirty: Set[BlockId] = set()
        #: guards the LRU order, residency set and dirty set — concurrent
        #: reader sessions hit the pool in parallel, and an unsynchronized
        #: eviction racing a move_to_end raises (or loses a dirty page)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # pass-through API (same surface as SimulatedDisk)
    # ------------------------------------------------------------------ #
    @property
    def block_size(self) -> int:
        return self.disk.block_size

    @property
    def stats(self):
        return self.disk.stats

    @property
    def meta(self):
        return self.disk.meta

    @property
    def blocks_in_use(self) -> int:
        return self.disk.blocks_in_use

    def block_ids(self) -> List[BlockId]:
        return self.disk.block_ids()

    def measure(self):
        return self.disk.measure()

    def allocate(
        self,
        records: Optional[List[Any]] = None,
        header: Optional[Dict[str, Any]] = None,
        capacity: Optional[int] = None,
    ) -> Block:
        with self._lock:
            block = self.disk.allocate(records, header, capacity)
            self._insert(block, dirty=False)
            return block

    def free(self, block_id: BlockId) -> None:
        with self._lock:
            self._cache.pop(block_id, None)
            self._dirty.discard(block_id)
            self.disk.free(block_id)

    def read(self, block_id: BlockId) -> Block:
        """Read a block, through the cache."""
        with self._lock:
            if block_id in self._cache:
                self._cache.move_to_end(block_id)
                self.disk.stats.count(cache_hits=1)
                return self._cache[block_id]
            block = self.disk.read(block_id)
            self._insert(block, dirty=False)
            return block

    def write(self, block: Block) -> None:
        """Write a block.  Deferred to eviction or :meth:`flush` (write-back)."""
        with self._lock:
            self._insert(block, dirty=True)

    def peek(self, block_id: BlockId) -> Block:
        with self._lock:
            if block_id in self._cache:
                return self._cache[block_id]
        return self.disk.peek(block_id)

    # ------------------------------------------------------------------ #
    # cache machinery
    # ------------------------------------------------------------------ #
    def _insert(self, block: Block, dirty: bool) -> None:
        # caller holds self._lock
        self._cache[block.block_id] = block
        self._cache.move_to_end(block.block_id)
        if dirty:
            self._dirty.add(block.block_id)
        while len(self._cache) > self.capacity_pages:
            victim_id, victim = self._cache.popitem(last=False)
            if victim_id in self._dirty:
                self._dirty.discard(victim_id)
                self.disk.write(victim)

    def flush(self) -> None:
        """Write back every dirty resident page."""
        with self._lock:
            for block_id in list(self._dirty):
                block = self._cache.get(block_id)
                if block is not None:
                    self.disk.write(block)
            self._dirty.clear()

    def drop(self) -> None:
        """Empty the cache *without* writing dirty pages (test helper)."""
        with self._lock:
            self._cache.clear()
            self._dirty.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferManager(pages={len(self._cache)}/{self.capacity_pages}, "
            f"dirty={len(self._dirty)})"
        )
