"""The storage-backend protocol every external structure builds on.

The paper's cost model only requires a page store: fixed-capacity blocks,
each read or write counting as one I/O.  :class:`StorageBackend` captures
that contract structurally, so the data structures are agnostic to *where*
the pages live:

* :class:`~repro.io.disk.SimulatedDisk` — in-memory pages (the default;
  exact, deterministic I/O counts),
* :class:`~repro.io.filedisk.FileDisk` — real pages serialized to a file on
  disk, same accounting,
* :class:`~repro.io.buffer.BufferManager` — an LRU buffer pool layered over
  either of the above.

Any object satisfying this protocol can be passed wherever a ``disk`` is
expected, including :class:`~repro.engine.Engine` via ``Engine(backend=...)``.
"""

from __future__ import annotations

from typing import Any, ContextManager, Dict, List, Optional, Protocol, runtime_checkable

from repro.io.counters import IOStats, Measurement
from repro.io.disk import Block, BlockId


@runtime_checkable
class StorageBackend(Protocol):
    """Structural interface of a block store with I/O accounting.

    Implementations must treat :meth:`read` and :meth:`write` as one I/O
    each (buffer pools may absorb reads as cache hits), and must enforce the
    per-block record capacity on write.

    Mutating a block returned by :meth:`read` or :meth:`allocate` does *not*
    persist the change until :meth:`write` is called.  ``SimulatedDisk``
    happens to alias live objects, but file-backed stores round-trip through
    serialization — structures must not rely on aliasing.
    """

    block_size: int
    stats: IOStats
    #: free-form metadata dictionary (not blocks, not I/O-counted); the
    #: engine stores its catalog root pointer here, and persistent backends
    #: (``FileDisk``) carry it across processes
    meta: Dict[str, Any]

    def allocate(
        self,
        records: Optional[List[Any]] = None,
        header: Optional[Dict[str, Any]] = None,
        capacity: Optional[int] = None,
    ) -> Block:
        """Allocate and persist a new block (one write I/O)."""
        ...

    def free(self, block_id: BlockId) -> None:
        """Release a block (not an I/O)."""
        ...

    def read(self, block_id: BlockId) -> Block:
        """Fetch a block (one read I/O, unless absorbed by a cache)."""
        ...

    def write(self, block: Block) -> None:
        """Persist a block (one write I/O, possibly deferred by a cache)."""
        ...

    def peek(self, block_id: BlockId) -> Block:
        """Inspect a block without accounting (tests/invariant checks only)."""
        ...

    @property
    def blocks_in_use(self) -> int:
        """Number of live blocks (the space bound)."""
        ...

    def measure(self) -> ContextManager[Measurement]:
        """Scoped I/O measurement (see :meth:`SimulatedDisk.measure`)."""
        ...
