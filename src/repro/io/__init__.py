"""I/O cost-model substrate.

The paper measures every algorithm by the number of disk-block transfers
("I/Os") it performs, where each block holds ``B`` units of data.  This
subpackage provides that cost model as an executable substrate:

* :class:`~repro.io.disk.SimulatedDisk` — an in-memory page store whose
  reads and writes are counted,
* :class:`~repro.io.buffer.BufferManager` — an LRU buffer pool modelling the
  ``O(B^2)`` words of main memory the paper assumes,
* :class:`~repro.io.filedisk.FileDisk` — the same page store backed by a
  real file on disk,
* :class:`~repro.io.counters.IOStats` — the counters every benchmark reports.

The common contract is :class:`~repro.io.backend.StorageBackend`: all
external data structures in this repository (B+-trees, metablock trees,
blocked priority search trees) allocate their pages from *some* backend and
therefore have exact, deterministic I/O costs regardless of where the pages
physically live.
"""

from repro.io.counters import IOStats, Measurement
from repro.io.disk import Block, BlockId, SimulatedDisk
from repro.io.buffer import BufferManager
from repro.io.backend import StorageBackend
from repro.io.filedisk import FileDisk

__all__ = [
    "Block",
    "BlockId",
    "BufferManager",
    "FileDisk",
    "IOStats",
    "Measurement",
    "SimulatedDisk",
    "StorageBackend",
]
