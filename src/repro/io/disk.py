"""A simulated disk of fixed-capacity blocks with I/O counting.

The paper's model (Section 1.1): secondary storage is accessed in pages of
``B`` units, each access is one I/O, and bounds are expressed in the number
of I/Os.  :class:`SimulatedDisk` realises that model: it stores blocks in a
dictionary, enforces the per-block record capacity, and counts every read
and write.

A *block* here holds up to ``B`` records (arbitrary Python objects) plus a
small, constant amount of header information (pointers, split keys).  This
matches the convention used throughout the paper, where "a block holds B
data items" and control information of constant size per block is ignored.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.io.counters import IOStats, Measurement

BlockId = int


class Block:
    """A single disk block.

    Parameters
    ----------
    block_id:
        Identifier assigned by the owning :class:`SimulatedDisk`.
    capacity:
        Maximum number of records the block may hold (the page size ``B``).
    records:
        Initial payload records.
    header:
        Constant-size control information (child pointers, fence keys...).
        Kept separate from ``records`` so capacity checks only apply to data.
    """

    __slots__ = ("block_id", "capacity", "records", "header")

    def __init__(
        self,
        block_id: BlockId,
        capacity: int,
        records: Optional[List[Any]] = None,
        header: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.block_id = block_id
        self.capacity = capacity
        self.records: List[Any] = list(records) if records is not None else []
        self.header: Dict[str, Any] = dict(header) if header is not None else {}
        if len(self.records) > capacity:
            raise ValueError(
                f"block {block_id} overfull: {len(self.records)} > capacity {capacity}"
            )

    @property
    def is_full(self) -> bool:
        return len(self.records) >= self.capacity

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block(id={self.block_id}, n={len(self.records)}/{self.capacity})"


class SimulatedDisk:
    """An in-memory page store that counts I/Os.

    Parameters
    ----------
    block_size:
        The page capacity ``B`` in records.  Every block allocated from this
        disk holds at most ``block_size`` records.

    Notes
    -----
    * ``read``/``write`` each count as one I/O.
    * Structures that want to model a buffer pool should wrap the disk in a
      :class:`~repro.io.buffer.BufferManager`; the raw disk itself performs
      no caching, which gives worst-case (cold-cache) I/O counts.
    """

    def __init__(self, block_size: int) -> None:
        if block_size < 2:
            raise ValueError("block_size must be at least 2")
        self.block_size = block_size
        self.stats = IOStats()
        #: free-form metadata (the engine catalog root pointer lives here);
        #: in-memory only — the file-backed disk persists it in its sidecar
        self.meta: Dict[str, Any] = {}
        self._blocks: Dict[BlockId, Block] = {}
        self._next_id: BlockId = 0

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #
    def allocate(
        self,
        records: Optional[List[Any]] = None,
        header: Optional[Dict[str, Any]] = None,
        capacity: Optional[int] = None,
    ) -> Block:
        """Allocate a new block, write it, and return it.

        Allocation itself is free; the initial write is counted as one I/O,
        mirroring the cost of materialising a page on disk.
        """
        block_id = self._next_id
        self._next_id += 1
        block = Block(block_id, capacity or self.block_size, records, header)
        self._blocks[block_id] = block
        self.stats.count(allocations=1, writes=1)
        return block

    def free(self, block_id: BlockId) -> None:
        """Release a block.  Freeing is not an I/O."""
        if block_id in self._blocks:
            del self._blocks[block_id]
            self.stats.count(frees=1)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def read(self, block_id: BlockId) -> Block:
        """Read a block from disk (one I/O)."""
        try:
            block = self._blocks[block_id]
        except KeyError as exc:
            raise KeyError(f"no such block: {block_id}") from exc
        self.stats.count(reads=1)
        return block

    def write(self, block: Block) -> None:
        """Write a block back to disk (one I/O)."""
        if block.block_id not in self._blocks:
            raise KeyError(f"no such block: {block.block_id}")
        if len(block.records) > block.capacity:
            raise ValueError(
                f"block {block.block_id} overfull: "
                f"{len(block.records)} > capacity {block.capacity}"
            )
        self._blocks[block.block_id] = block
        self.stats.count(writes=1)

    def peek(self, block_id: BlockId) -> Block:
        """Inspect a block *without* counting an I/O.

        Intended for tests and for structure-invariant checks; algorithms
        must use :meth:`read`.
        """
        return self._blocks[block_id]

    # ------------------------------------------------------------------ #
    # accounting helpers
    # ------------------------------------------------------------------ #
    @property
    def blocks_in_use(self) -> int:
        """Number of currently allocated blocks (the space bound)."""
        return len(self._blocks)

    def block_ids(self) -> List[BlockId]:
        return list(self._blocks.keys())

    @contextmanager
    def measure(self) -> Iterator[Measurement]:
        """Measure I/Os performed within a ``with`` block.

        Example
        -------
        >>> disk = SimulatedDisk(block_size=4)
        >>> blk = disk.allocate([1, 2, 3])
        >>> with disk.measure() as m:
        ...     _ = disk.read(blk.block_id)
        >>> m.ios
        1
        """
        measurement = Measurement(before=self.stats.snapshot())
        try:
            yield measurement
        finally:
            measurement.after = self.stats.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulatedDisk(B={self.block_size}, blocks={self.blocks_in_use}, "
            f"{self.stats})"
        )
