"""I/O statistics counters.

Every read or write of a disk block is one I/O in the paper's cost model.
:class:`IOStats` keeps the running totals and supports scoped measurement so
a benchmark can ask "how many I/Os did *this* query perform?" without
resetting global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Running I/O counters for a :class:`~repro.io.disk.SimulatedDisk`.

    Attributes
    ----------
    reads:
        Number of block reads served from disk (cache misses included,
        cache hits excluded).
    writes:
        Number of block writes that reached the disk.
    allocations:
        Number of blocks ever allocated.
    frees:
        Number of blocks freed.
    cache_hits:
        Number of reads absorbed by a buffer pool and therefore *not*
        counted as I/Os.
    """

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0
    cache_hits: int = 0

    @property
    def total(self) -> int:
        """Total I/Os (reads + writes)."""
        return self.reads + self.writes

    def snapshot(self) -> "IOStats":
        """Return a copy of the current counters."""
        return IOStats(
            reads=self.reads,
            writes=self.writes,
            allocations=self.allocations,
            frees=self.frees,
            cache_hits=self.cache_hits,
        )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return the counter increase since ``earlier`` was snapshotted."""
        return IOStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            allocations=self.allocations - earlier.allocations,
            frees=self.frees - earlier.frees,
            cache_hits=self.cache_hits - earlier.cache_hits,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.frees = 0
        self.cache_hits = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IOStats(reads={self.reads}, writes={self.writes}, "
            f"total={self.total}, hits={self.cache_hits}, "
            f"alloc={self.allocations}, free={self.frees})"
        )


@dataclass
class Measurement:
    """A scoped I/O measurement produced by :meth:`SimulatedDisk.measure`."""

    before: IOStats = field(default_factory=IOStats)
    after: IOStats = field(default_factory=IOStats)

    @property
    def ios(self) -> int:
        """I/Os performed inside the measured scope."""
        return self.after.diff(self.before).total

    @property
    def reads(self) -> int:
        return self.after.reads - self.before.reads

    @property
    def writes(self) -> int:
        return self.after.writes - self.before.writes
