"""I/O statistics counters.

Every read or write of a disk block is one I/O in the paper's cost model.
:class:`IOStats` keeps the running totals and supports scoped measurement so
a benchmark can ask "how many I/Os did *this* query perform?" without
resetting global state.

Thread safety & attribution
---------------------------
A storage backend is shared by every index of an engine — and, since the
serving subsystem, by every concurrent :class:`~repro.engine.session.
EngineSession` draining queries in parallel.  Two guarantees follow:

* **Totals never lose updates.**  All mutation goes through :meth:`count`
  (or :meth:`merge`/:meth:`reset`), which holds a per-instance lock around
  the read-modify-write.  The bare ``stats.reads += 1`` pattern of the
  single-caller era is gone from the backends.
* **Per-thread attribution.**  :meth:`attributed` registers a *sink*
  :class:`IOStats` for the **current thread only**: every ``count`` on this
  instance performed by that thread is mirrored into the sink until the
  ``with`` block exits.  Because registration is thread-local, concurrent
  requests on one backend each see exactly their own I/Os — which is what
  keeps the paper's per-query bounds checkable per request while other
  sessions hammer the same disk.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class IOStats:
    """Running I/O counters for a :class:`~repro.io.disk.SimulatedDisk`.

    Attributes
    ----------
    reads:
        Number of block reads served from disk (cache misses included,
        cache hits excluded).
    writes:
        Number of block writes that reached the disk.
    allocations:
        Number of blocks ever allocated.
    frees:
        Number of blocks freed.
    cache_hits:
        Number of reads absorbed by a buffer pool and therefore *not*
        counted as I/Os.
    fsyncs:
        Number of ``fsync`` barriers issued (WAL group commits, sidecar
        checkpoints).  Durability work, not block transfer: excluded from
        :attr:`total` so the paper's I/O bounds are unaffected, but
        counted so group-commit amortization is measurable.
    """

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0
    cache_hits: int = 0
    fsyncs: int = 0
    #: guards every read-modify-write (``count``/``merge``/``reset``)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )
    #: per-thread attribution sinks (see :meth:`attributed`)
    _local: threading.local = field(
        default_factory=threading.local, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # mutation (the only thread-safe write paths)
    # ------------------------------------------------------------------ #
    def count(
        self,
        reads: int = 0,
        writes: int = 0,
        allocations: int = 0,
        frees: int = 0,
        cache_hits: int = 0,
        fsyncs: int = 0,
    ) -> None:
        """Add to the counters under the lock; mirror into this thread's sinks.

        This is what the storage backends call on every block operation.
        A bare ``stats.reads += 1`` is a read-modify-write that loses
        updates under concurrency; ``count`` does not.
        """
        with self._lock:
            self.reads += reads
            self.writes += writes
            self.allocations += allocations
            self.frees += frees
            self.cache_hits += cache_hits
            self.fsyncs += fsyncs
        sinks = getattr(self._local, "sinks", None)
        if sinks:
            for sink in sinks:
                sink.count(
                    reads=reads,
                    writes=writes,
                    allocations=allocations,
                    frees=frees,
                    cache_hits=cache_hits,
                    fsyncs=fsyncs,
                )

    def merge(self, other: "IOStats") -> None:
        """Fold another counter set into this one (thread-safe)."""
        self.count(
            reads=other.reads,
            writes=other.writes,
            allocations=other.allocations,
            frees=other.frees,
            cache_hits=other.cache_hits,
            fsyncs=other.fsyncs,
        )

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.reads = 0
            self.writes = 0
            self.allocations = 0
            self.frees = 0
            self.cache_hits = 0
            self.fsyncs = 0

    # ------------------------------------------------------------------ #
    # per-thread attribution
    # ------------------------------------------------------------------ #
    @contextmanager
    def attributed(self, sink: "IOStats") -> Iterator["IOStats"]:
        """Mirror this thread's counts into ``sink`` for the scope's duration.

        Registration is **thread-local**: other threads' I/Os on the same
        backend are never attributed to ``sink``, so concurrent sessions can
        each measure their own requests on one shared disk.  Scopes nest —
        an inner sink and an outer sink both receive the inner scope's
        counts.
        """
        sinks = getattr(self._local, "sinks", None)
        if sinks is None:
            sinks = self._local.sinks = []
        sinks.append(sink)
        try:
            yield sink
        finally:
            # unregister by identity: list.remove compares by ==, and two
            # sinks with equal counter values would unregister the wrong one
            for i in range(len(sinks) - 1, -1, -1):
                if sinks[i] is sink:
                    del sinks[i]
                    break

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    @property
    def total(self) -> int:
        """Total I/Os (reads + writes)."""
        return self.reads + self.writes

    def snapshot(self) -> "IOStats":
        """Return a consistent copy of the current counters."""
        with self._lock:
            return IOStats(
                reads=self.reads,
                writes=self.writes,
                allocations=self.allocations,
                frees=self.frees,
                cache_hits=self.cache_hits,
                fsyncs=self.fsyncs,
            )

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return the counter increase since ``earlier`` was snapshotted."""
        return IOStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            allocations=self.allocations - earlier.allocations,
            frees=self.frees - earlier.frees,
            cache_hits=self.cache_hits - earlier.cache_hits,
            fsyncs=self.fsyncs - earlier.fsyncs,
        )

    def as_dict(self) -> dict:
        """The counters as plain data (what the wire protocol ships)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "allocations": self.allocations,
            "frees": self.frees,
            "cache_hits": self.cache_hits,
            "fsyncs": self.fsyncs,
            "total": self.total,
        }

    # locks and thread-local registries are process state, not counter
    # state: copies and pickles carry the numbers only
    def __getstate__(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "allocations": self.allocations,
            "frees": self.frees,
            "cache_hits": self.cache_hits,
            "fsyncs": self.fsyncs,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("fsyncs", 0)  # pickles from older layouts
        self.__dict__["_lock"] = threading.Lock()
        self.__dict__["_local"] = threading.local()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IOStats(reads={self.reads}, writes={self.writes}, "
            f"total={self.total}, hits={self.cache_hits}, "
            f"alloc={self.allocations}, free={self.frees})"
        )


@dataclass
class Measurement:
    """A scoped I/O measurement produced by :meth:`SimulatedDisk.measure`."""

    before: IOStats = field(default_factory=IOStats)
    after: IOStats = field(default_factory=IOStats)

    @property
    def ios(self) -> int:
        """I/Os performed inside the measured scope."""
        return self.after.diff(self.before).total

    @property
    def reads(self) -> int:
        return self.after.reads - self.before.reads

    @property
    def writes(self) -> int:
        return self.after.writes - self.before.writes
