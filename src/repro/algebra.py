"""Operator support for the composable query algebra.

Every query descriptor in the engine — the leaves of
:mod:`repro.engine.queries`, the geometric shapes of
:mod:`repro.metablock.geometry`, and the combinator nodes themselves —
mixes in :class:`AlgebraicQuery`, which supplies

* the combinator operators ``&`` (:class:`~repro.engine.queries.And`),
  ``|`` (:class:`~repro.engine.queries.Or`) and ``~``
  (:class:`~repro.engine.queries.Not`), and
* the modifier constructors :meth:`AlgebraicQuery.limit` and
  :meth:`AlgebraicQuery.order_by`.

The mixin lives in its own dependency-free module so that both
``repro.engine.queries`` and ``repro.metablock.geometry`` can import it
without creating a cycle (``queries`` already imports ``geometry``); the
combinator classes are imported lazily inside each operator.

Every node in the algebra also exposes a brute-force ``matches(record)``
oracle, so a composed query can always be evaluated against a plain list of
records — that is what keeps planner-chosen plans testable.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Callable, Optional, Union


def _serialize_operand(value: Any) -> Any:
    """One field value as wire-safe data (scalars pass, nodes recurse)."""
    if isinstance(value, AlgebraicQuery):
        return value.to_dict()
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):  # Param and other non-algebra node dataclasses
        return to_dict()
    if isinstance(value, (tuple, list)):
        return [_serialize_operand(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ValueError(
        f"operand {value!r} of type {type(value).__name__} is not "
        "wire-serializable; use scalars, Param placeholders or query nodes"
    )


class AlgebraicQuery:
    """Mixin: ``&``/``|``/``~`` combinators plus ``limit``/``order_by``."""

    def __and__(self, other: "AlgebraicQuery") -> Any:
        from repro.engine.queries import And

        return And(self, other)

    def __or__(self, other: "AlgebraicQuery") -> Any:
        from repro.engine.queries import Or

        return Or(self, other)

    def __invert__(self) -> Any:
        from repro.engine.queries import Not

        return Not(self)

    def limit(self, n: int) -> Any:
        """At most ``n`` records of this query's answer."""
        from repro.engine.queries import Limit

        return Limit(self, n)

    def order_by(
        self,
        key: Optional[Union[str, Callable[[Any], Any]]] = None,
        *,
        reverse: bool = False,
    ) -> Any:
        """This query's answer sorted by ``key`` (attribute name or callable)."""
        from repro.engine.queries import OrderBy

        return OrderBy(self, key, reverse=reverse)

    def matches(self, record: Any) -> bool:
        """Brute-force oracle: whether ``record`` belongs to the answer."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the matches oracle"
        )

    def to_dict(self) -> dict:
        """This query as plain, JSON-safe data — the wire form.

        Every node serializes to ``{"node": <class name>, <field>: <value>,
        ...}`` with sub-queries recursing and scalar operands passing
        through; :func:`repro.engine.queries.query_from_dict` reverses the
        mapping, and the round-trip preserves both :meth:`signature` and
        :meth:`matches` semantics (the serving protocol's contract).
        Fields excluded from equality (e.g. ``ClassRange.hierarchy``, a
        live object handle) are left out; operands that cannot cross a
        wire — notably callable ``OrderBy`` keys — raise a descriptive
        :class:`ValueError`.
        """
        if not is_dataclass(self):
            raise TypeError(
                f"{type(self).__name__} is not a dataclass node; override to_dict"
            )
        out: dict = {"node": type(self).__name__}
        for f in fields(self):
            if not f.compare:
                # non-identity fields (ClassRange.hierarchy) are process-local
                # context, re-bound on the receiving side — never wire data
                continue
            out[f.name] = _serialize_operand(getattr(self, f.name))
        return out

    def signature(self) -> tuple:
        """Structural cache key: the query's *shape*, scalar operands factored out.

        Two queries with equal signatures are served by the same plan
        strategy — same candidate indexes, same pushdown/residual split —
        differing only in parameter values (range endpoints, stab points).
        The :class:`~repro.engine.planner.QueryPlanner` keys its plan cache
        on this, so ``Stab(3.0)`` and ``Stab(7.0)`` share one cached plan.
        Nodes whose operands select *which* index can serve them (e.g.
        ``EndpointRange.side``) override this to fold those operands in.
        """
        return (type(self).__name__,)
