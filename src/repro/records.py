"""Record identity: the one definition of "the same stored record".

The package's record dataclasses (:class:`~repro.interval.Interval`,
:class:`~repro.classes.hierarchy.ClassObject`,
:class:`~repro.metablock.geometry.PlanarPoint`) carry a
serialization-stable, process-unique ``uid``; everything that needs to
recognise a record again — the planner's union deduplication, the write
path's duplicate detection, tombstone sets — keys on it through
:func:`record_key`, so the *same* stored record reached twice deduplicates
while value-identical records stay distinct, on every backend.
"""

from __future__ import annotations

from typing import Any, Iterable, Set


def record_key(record: Any) -> Any:
    """A deduplication identity for a logical record.

    Records with a ``uid`` key by it; ``(key, value)`` pairs key by
    ``(key, record_key(value))``; anything else falls back to ``repr``.
    """
    uid = getattr(record, "uid", None)
    if uid is not None:
        return uid
    if isinstance(record, tuple) and len(record) == 2:
        return (record[0], record_key(record[1]))
    return (type(record).__name__, repr(record))


def fresh_record_keys(
    items: Iterable[Any], existing: Iterable[Any] = (), context: str = "bulk_load batch"
) -> Set[Any]:
    """The identity keys of ``items``, validated process-unique.

    Raises a descriptive :class:`ValueError` when the batch repeats a key
    internally or collides with ``existing`` — the shared guard every
    bulk-loading structure applies *before* touching any blocks, so a
    duplicate can never be half-indexed.
    """
    keys = [record_key(item) for item in items]
    fresh = set(keys)
    existing = existing if isinstance(existing, (set, frozenset, dict)) else set(existing)
    if len(fresh) != len(keys) or fresh & set(existing):
        raise ValueError(
            f"duplicate record uids in {context}; records carry a "
            "process-unique uid, so loading the same object twice would "
            "silently double-index it"
        )
    return fresh
